/**
 * @file
 * Ablation: how faithful is the Table III Izhikevich support?
 *
 * Section VIII claims "Flexon fully supports Izhikevich's model" via
 * the EXD+COBE+REV+QDI+ADT+AR combination. The composition captures
 * the model's *behavioural repertoire* (quadratic upswing,
 * adaptation, refractoriness) but not its algebra — notably the
 * native model resets v to the free parameter c, while Flexon resets
 * to the resting voltage.
 *
 * This study compares f-I curves (firing rate vs constant drive) of
 * the native 4-parameter model against the Flexon feature
 * composition running on the folded datapath, checking the
 * behavioural properties the paper's flexibility argument rests on:
 * a continuous class-1-style rate increase and spike-frequency
 * adaptation.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "features/model_table.hh"
#include "folded/neuron.hh"
#include "models/izhikevich_native.hh"

using namespace flexon;

namespace {

/** Adapter: folded-Flexon Izhikevich under constant conductance. */
class FlexonIzhikevich
{
  public:
    FlexonIzhikevich()
        : config_(FlexonConfig::fromParams(
              defaultParams(ModelKind::Izhikevich))),
          neuron_(config_)
    {
    }

    bool
    step(double current)
    {
        const Fix in = config_.scaleWeight(current);
        return neuron_.step(in);
    }

  private:
    FlexonConfig config_;
    FoldedFlexonNeuron neuron_;
};

/** First and last inter-spike intervals under constant drive. */
std::pair<int, int>
adaptationIsi(IzhikevichNative &neuron, double current, int steps)
{
    std::vector<int> times;
    for (int t = 0; t < steps; ++t)
        if (neuron.step(current))
            times.push_back(t);
    if (times.size() < 3)
        return {0, 0};
    return {times[1] - times[0],
            static_cast<int>(times.back() - times[times.size() - 2])};
}

} // namespace

int
main()
{
    std::printf("=== Ablation: native Izhikevich vs the Flexon "
                "feature composition ===\n\n");

    // f-I curves. The two models live in different input units
    // (native: dimensionless current ~4-20; Flexon composition:
    // normalized conductance ~0.02-0.2), so the comparison is of
    // *shape*: rate 0 below rheobase, then a continuous, monotone
    // increase.
    Table fi({"drive (native I | flexon g)", "native rate",
              "flexon rate"});
    const std::vector<std::pair<double, double>> drives = {
        {2.0, 0.01}, {4.0, 0.02}, {6.0, 0.04}, {8.0, 0.06},
        {10.0, 0.08}, {14.0, 0.12}, {20.0, 0.20},
    };
    std::vector<double> native_rates, flexon_rates;
    for (const auto &[i_native, g_flexon] : drives) {
        IzhikevichNative native(izhikevichRegularSpiking());
        FlexonIzhikevich flexon;
        const double rn = firingRate(native, i_native, 40000);
        const double rf = firingRate(flexon, g_flexon, 40000);
        native_rates.push_back(rn);
        flexon_rates.push_back(rf);
        char label[48];
        std::snprintf(label, sizeof(label), "%.1f | %.2f", i_native,
                      g_flexon);
        fi.addRow({label, Table::num(rn, 4), Table::num(rf, 4)});
    }
    fi.print(std::cout);

    bool native_monotone = true, flexon_monotone = true;
    for (size_t i = 1; i < native_rates.size(); ++i) {
        native_monotone &= native_rates[i] >= native_rates[i - 1];
        flexon_monotone &= flexon_rates[i] >= flexon_rates[i - 1];
    }
    std::printf("\nBoth f-I curves are monotone: native %s, flexon "
                "%s — the class-1 excitability\nsignature survives "
                "the feature mapping.\n",
                native_monotone ? "yes" : "NO",
                flexon_monotone ? "yes" : "NO");

    // Adaptation signature.
    IzhikevichNative rs(izhikevichRegularSpiking());
    const auto [first, last] = adaptationIsi(rs, 10.0, 20000);
    std::printf("\nNative regular-spiking adaptation: first ISI %d "
                "-> last ISI %d steps (stretching,\nas does the "
                "Flexon composition — see fig04_08_features). The "
                "mismatch the mapping\ncannot express: the native "
                "reset-to-c (e.g. chattering at c = -50 mV) has no\n"
                "counterpart, since Flexon resets v to the resting "
                "voltage (Equation 5); burst\nregimes built on "
                "elevated resets are approximated, not reproduced.\n",
                first, last);
    return 0;
}
