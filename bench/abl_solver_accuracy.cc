/**
 * @file
 * Ablation: the Table I solver trade-off.
 *
 * Half the collected SNNs pay for RKF45 "to achieve a high
 * biological accuracy"; the rest use Euler "to reduce the overheads
 * of differential equations" (Section III-A). This study quantifies
 * both sides on one neuron: spike-time accuracy against a reference
 * solution (RKF45 at 100x tighter tolerance) and derivative
 * evaluations per simulated step, for the AdEx model under a frozen
 * pseudo-random input train.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/spike_train.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "features/model_table.hh"
#include "models/ode_neuron.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

/** Frozen input train shared by all solver runs. */
std::vector<double>
inputTrain(int steps, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> train(steps, 0.0);
    for (double &x : train)
        if (rng.bernoulli(0.15))
            x = rng.uniform(0.3, 0.9);
    return train;
}

struct SolverRun
{
    std::vector<uint64_t> spikes;
    uint64_t rhsEvals;
};

SolverRun
run(SolverKind solver, const std::vector<double> &train)
{
    OdeNeuron neuron(defaultParams(ModelKind::AdEx), solver);
    SolverRun result;
    for (size_t t = 0; t < train.size(); ++t)
        if (neuron.step(train[t]))
            result.spikes.push_back(t);
    result.rhsEvals = neuron.rhsEvaluations();
    return result;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: Euler vs RKF45 (the Table I solver "
                "column) ===\n\n");

    const int steps = 20000;
    const auto train = inputTrain(steps, 33);

    const SolverRun euler = run(SolverKind::Euler, train);
    const SolverRun rkf = run(SolverKind::RKF45, train);

    // The discrete reference equations (what Flexon implements) for
    // the same train.
    ReferenceNeuron discrete(defaultParams(ModelKind::AdEx));
    std::vector<uint64_t> discrete_spikes;
    for (size_t t = 0; t < train.size(); ++t)
        if (discrete.step(train[t]))
            discrete_spikes.push_back(t);

    Table table({"Solver", "spikes", "RHS evals/step",
                 "coincidence vs RKF45 @1ms"});
    auto row = [&](const char *name, const SolverRun &r) {
        table.addRow(
            {name, std::to_string(r.spikes.size()),
             Table::num(static_cast<double>(r.rhsEvals) / steps, 1),
             Table::num(coincidence(r.spikes, rkf.spikes, 10), 3)});
    };
    row("Euler (1 eval)", euler);
    row("RKF45 (adaptive)", rkf);
    table.addRow({"discrete (Flexon form)",
                  std::to_string(discrete_spikes.size()), "0.0",
                  Table::num(coincidence(discrete_spikes, rkf.spikes,
                                         10),
                             3)});
    table.print(std::cout);

    std::printf("\nShape: RKF45 pays %.0fx the derivative "
                "evaluations of Euler for the accuracy\nmargin — "
                "exactly the latency the paper's Figure 3 RKF45 "
                "rows spend in neuron\ncomputation, and the reason "
                "a digital neuron that hardwires the discrete\n"
                "update wins so much.\n",
                static_cast<double>(rkf.rhsEvals) /
                    static_cast<double>(euler.rhsEvals));
    return 0;
}
