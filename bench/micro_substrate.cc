/**
 * @file
 * Microbenchmarks for the supporting substrates: network
 * construction, serialization, STDP updates, spike-train analysis,
 * and the Verilog emitter — the costs a user pays outside the
 * simulation loop.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/spike_train.hh"
#include "backend/verilog.hh"
#include "nets/table1.hh"
#include "snn/serialize.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

void
BM_BuildBenchmarkNetwork(benchmark::State &state)
{
    const double scale = static_cast<double>(state.range(0));
    for (auto _ : state) {
        BenchmarkInstance inst = buildBenchmark(
            findBenchmark("Vogels-Abbott"), scale, 1);
        benchmark::DoNotOptimize(inst.network.numSynapses());
    }
}

void
BM_SaveNetwork(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 1);
    for (auto _ : state) {
        std::ostringstream oss;
        saveNetwork(oss, inst.network);
        benchmark::DoNotOptimize(oss.str().size());
    }
}

void
BM_LoadNetwork(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 1);
    std::ostringstream oss;
    saveNetwork(oss, inst.network);
    const std::string text = oss.str();
    for (auto _ : state) {
        std::istringstream iss(text);
        Network net = loadNetwork(iss);
        benchmark::DoNotOptimize(net.numSynapses());
    }
}

void
BM_StdpStep(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 1);
    StdpEngine engine(inst.network);
    Rng rng(3);
    std::vector<uint8_t> fired(inst.network.numNeurons());
    for (size_t i = 0; i < fired.size(); ++i)
        fired[i] = rng.bernoulli(0.02);
    for (auto _ : state)
        engine.onStep(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(engine.plasticSynapses()));
}

void
BM_CoincidenceAnalysis(benchmark::State &state)
{
    Rng rng(7);
    std::vector<uint64_t> a, b;
    for (uint64_t t = 0; t < 100000; ++t) {
        if (rng.bernoulli(0.02))
            a.push_back(t);
        if (rng.bernoulli(0.02))
            b.push_back(t);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(coincidence(a, b, 10));
}

void
BM_EmitVerilog(benchmark::State &state)
{
    const CompiledNeuron adex = compileModel(ModelKind::AdEx);
    for (auto _ : state)
        benchmark::DoNotOptimize(emitFoldedVerilog(adex).size());
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_BuildBenchmarkNetwork)->Arg(40)->Arg(20)->Arg(10);
BENCHMARK(flexon::BM_SaveNetwork);
BENCHMARK(flexon::BM_LoadNetwork);
BENCHMARK(flexon::BM_StdpStep);
BENCHMARK(flexon::BM_CoincidenceAnalysis);
BENCHMARK(flexon::BM_EmitVerilog);
