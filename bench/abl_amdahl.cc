/**
 * @file
 * Ablation: end-to-end Amdahl analysis.
 *
 * The paper accelerates only the neuron-computation phase; stimulus
 * generation and synapse calculation stay on the host (Section
 * II-C). This bench combines the Figure 3 phase shares with the
 * Figure 13 neuron speedups to show the *end-to-end* step speedup an
 * integrator should expect — the classic Amdahl ceiling that
 * motivates the paper's focus on offload-friendly integration
 * (Section VII-B).
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "flexon/array.hh"
#include "folded/array.hh"
#include "hwmodel/baselines.hh"
#include "nets/table1.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: end-to-end step speedup when only "
                "neuron computation is\noffloaded (Amdahl analysis "
                "over Figure 3 shares x Figure 13 speedups) ===\n\n");

    Table table({"SNN", "neuron share", "neuron speedup",
                 "end-to-end", "ceiling (1/(1-share))"});
    std::vector<double> end_to_end;

    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        const PhaseShares shares =
            phaseShares(Platform::CpuXeon, spec);

        const double cpu_neuron = neuronPhaseSeconds(
            Platform::CpuXeon, spec, spec.neurons);
        FlexonArray array;
        array.addPopulation(
            FlexonConfig::fromParams(benchmarkParams(spec)),
            spec.neurons);
        const double hw_neuron =
            static_cast<double>(array.cyclesPerStep()) /
            array.clockHz();
        const double neuron_speedup = cpu_neuron / hw_neuron;

        // Amdahl: total' = (1 - share) + share / speedup.
        const double total_speedup =
            1.0 / ((1.0 - shares.neuron) +
                   shares.neuron / neuron_speedup);
        const double ceiling = 1.0 / (1.0 - shares.neuron);
        end_to_end.push_back(total_speedup);

        table.addRow({spec.name, Table::num(shares.neuron, 2),
                      Table::ratio(neuron_speedup, 1),
                      Table::ratio(total_speedup, 2),
                      Table::ratio(ceiling, 2)});
    }
    table.print(std::cout);

    std::printf("\nGeomean end-to-end speedup: %.2fx — far below "
                "the %.0fx neuron-phase geomean,\nbecause the "
                "un-accelerated synapse phase dominates once the "
                "neurons are fast.\nThis is why Section VII-B "
                "integrates Flexon as a datapath next to the host\n"
                "rather than as a standalone device, and why "
                "follow-on work targets the synapse\nstage too.\n",
                geomean(end_to_end), 87.4);
    return 0;
}
