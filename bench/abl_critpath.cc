/**
 * @file
 * Ablation: critical-path delay and the Section IV-B1 optimizations.
 *
 * The paper reports that the EXI data path sat on Flexon's critical
 * path, and that two optimizations fixed it: a fast exponential
 * approximation (Schraudolph) and placing the EXI output at the top
 * level of the v' adder tree. This bench walks the four
 * combinations and derives each design's maximum clock (20 % slack
 * margin, as in Section VI-A), ending at the paper's 250 MHz /
 * 500 MHz operating points.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "hwmodel/timing.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: critical paths and maximum clocks "
                "(Section IV-B1 / VI-A) ===\n\n");

    Table table({"Design variant", "Binding path", "Delay [ns]",
                 "Max clock [MHz]"});

    const UnitDelays &d = tsmc45Delays();
    struct Variant
    {
        const char *name;
        bool fastExp;
        bool treeTop;
    };
    const Variant variants[] = {
        {"Flexon, naive exp, EXI at tree bottom", false, false},
        {"Flexon, naive exp, EXI at tree top", false, true},
        {"Flexon, fast exp, EXI at tree bottom", true, false},
        {"Flexon, fast exp + tree top (shipped)", true, true},
    };
    for (const Variant &v : variants) {
        const CriticalPath path =
            flexonCriticalPath(v.fastExp, v.treeTop);
        table.addRow({v.name, path.name,
                      Table::num(pathDelayNs(path, d), 2),
                      Table::num(maxClockHz(path) / 1e6, 0)});
    }
    const CriticalPath folded = foldedCriticalPath();
    table.addRow({"Spatially folded Flexon (stage 1)", folded.name,
                  Table::num(pathDelayNs(folded, d), 2),
                  Table::num(maxClockHz(folded) / 1e6, 0)});

    table.print(std::cout);

    std::printf("\nShape check: with a naive exponential unit the "
                "EXI path binds and the clock\ndrops below 200 MHz; "
                "the two optimizations push EXI off the critical "
                "path so\nthe COBA accumulation chain binds instead "
                "(~250 MHz, the paper's clock). The\nfolded "
                "pipeline's single MUL-ADD stage closes near "
                "500 MHz.\n");
    return 0;
}
