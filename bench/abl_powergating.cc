/**
 * @file
 * Ablation: per-model power of the baseline Flexon under the Figure
 * 10 power gating (latches switch unused per-feature data paths
 * off, Section IV-B). The full design toggles everything; a LIF
 * configuration toggles one multiplier; AdEx toggles most of the
 * chip. Energy-efficiency comparisons in the paper use the full
 * (worst-case) power, so gating is upside on top of Figure 13b.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "features/model_table.hh"
#include "hwmodel/datapath_cost.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: baseline-Flexon power with per-model "
                "data-path gating ===\n\n");

    const double full = flexonNeuronCost().powerMw;
    Table table({"Model", "Features", "Gated power [mW]",
                 "vs all-on"});
    for (ModelKind kind : allModels()) {
        const NeuronParams p = defaultParams(kind);
        const size_t types =
            p.features.has(Feature::CUB) ? 1 : p.numSynapseTypes;
        const HwCost gated = flexonGatedCost(p.features, types);
        table.addRow({modelName(kind), p.features.toString(),
                      Table::num(gated.powerMw, 3),
                      Table::num(100.0 * gated.powerMw / full, 1) +
                          "%"});
    }
    table.print(std::cout);

    std::printf("\nAll-on (Figure 12 / Table VI) power: %.3f mW per "
                "neuron lane. Expected shape:\nLLIF/LIF-class "
                "configurations toggle well under half the design; "
                "AdEx-class\nconfigurations approach the all-on "
                "figure — the gating latches earn their area\non "
                "simple workloads.\n",
                full);
    return 0;
}
