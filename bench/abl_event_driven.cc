/**
 * @file
 * Ablation: why LLIF suits event-driven execution (Section IV-A).
 *
 * The paper notes that TrueNorth-style designs favour the linear
 * decay (LID) because, besides needing no multiplier, it is
 * "suitable for event-driven execution": a silent LLIF neuron
 * reaches the resting floor after finitely many steps and then
 * *stays there exactly*, so an event-driven simulator can skip it
 * until the next input spike. An exponentially decaying neuron never
 * exactly reaches rest in floating point and must be touched every
 * step (or use closed-form decay on wake-up).
 *
 * This bench counts the neuron updates an idealized event-driven
 * engine would perform for LLIF vs SLIF under sparse Poisson input.
 */

#include <cstdio>
#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "features/model_table.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

struct UpdateCounts
{
    uint64_t stepDriven;
    uint64_t eventDriven;
    uint64_t spikes;
};

/**
 * Simulate one neuron; the event-driven count skips steps where the
 * neuron is provably idle: no input this step AND the state is
 * exactly at rest (v == 0, counters expired). That test is only ever
 * true for LID after its finite decay; EXD approaches 0 but the
 * discrete update keeps v > 0 indefinitely.
 */
UpdateCounts
run(ModelKind kind, double rate, double weight, int steps,
    uint64_t seed)
{
    const NeuronParams p = defaultParams(kind);
    ReferenceNeuron n(p);
    Rng rng(seed);
    UpdateCounts counts{0, 0, 0};
    for (int t = 0; t < steps; ++t) {
        const double in = rng.bernoulli(rate) ? weight : 0.0;
        ++counts.stepDriven;
        const bool idle = in == 0.0 && n.state().v == 0.0 &&
                          n.state().cnt == 0;
        if (!idle)
            ++counts.eventDriven;
        counts.spikes += n.step(in);
    }
    return counts;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: event-driven update counts, LLIF vs "
                "SLIF (Section IV-A) ===\n\n");

    Table table({"Model", "input rate", "spikes", "step-driven",
                 "event-driven", "updates saved"});
    // Sub-threshold kicks (dv = 0.6): the contrast is in the decay
    // back to rest, not in the post-spike reset (which zeroes both
    // models exactly).
    const int steps = 100000;
    for (double rate : {0.0005, 0.002, 0.01}) {
        for (ModelKind kind : {ModelKind::LLIF, ModelKind::SLIF}) {
            const UpdateCounts c =
                run(kind, rate, 60.0, steps, 99);
            const double saved =
                100.0 * (1.0 - static_cast<double>(c.eventDriven) /
                                   static_cast<double>(c.stepDriven));
            table.addRow({modelName(kind), Table::num(rate, 4),
                          std::to_string(c.spikes),
                          std::to_string(c.stepDriven),
                          std::to_string(c.eventDriven),
                          Table::num(saved, 1) + "%"});
        }
    }
    table.print(std::cout);

    std::printf("\nExpected shape: LLIF reaches exact rest between "
                "sparse inputs, so the\nevent-driven engine skips "
                "most updates at low rates; SLIF's exponential "
                "decay\nnever exactly lands on the floor, so almost "
                "nothing can be skipped. This is\nthe TrueNorth "
                "trade-off the LID feature exists to serve.\n");
    return 0;
}
