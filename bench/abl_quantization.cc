/**
 * @file
 * Ablation: fixed-point precision sweep.
 *
 * The paper picks a 32-bit fixed-point word with 22 fraction bits.
 * This ablation emulates narrower fraction fields by masking the low
 * bits of every stored state variable after each step, and measures
 * the spike-count error against the double-precision reference —
 * showing where the precision cliff lies and why Q10.22 is a safe
 * choice.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "features/model_table.hh"
#include "flexon/neuron.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

/** Drop the low (22 - keep_bits) bits of a raw fixed-point value. */
Fix
maskFraction(Fix v, int keep_bits)
{
    const int drop = Fix::fracBits - keep_bits;
    if (drop <= 0)
        return v;
    const int64_t mask = ~((int64_t(1) << drop) - 1);
    return Fix::fromRaw(v.raw() & mask);
}

void
maskState(FlexonState &s, int keep_bits, size_t types)
{
    s.v = maskFraction(s.v, keep_bits);
    s.w = maskFraction(s.w, keep_bits);
    s.r = maskFraction(s.r, keep_bits);
    for (size_t i = 0; i < types; ++i) {
        s.y[i] = maskFraction(s.y[i], keep_bits);
        s.g[i] = maskFraction(s.g[i], keep_bits);
    }
}

double
rateError(ModelKind kind, int keep_bits, int steps, uint64_t seed)
{
    const NeuronParams p = defaultParams(kind);
    const FlexonConfig cfg = FlexonConfig::fromParams(p);
    ReferenceNeuron ref(p);
    FlexonNeuron hw(cfg);
    const bool cub = p.features.has(Feature::CUB);

    Rng rng(seed);
    int ref_spikes = 0, hw_spikes = 0;
    for (int t = 0; t < steps; ++t) {
        const double raw = rng.bernoulli(0.25)
                               ? rng.uniform(0.2, 0.7) *
                                     (cub ? 100.0 : 1.0)
                               : 0.0;
        ref_spikes += ref.step(raw);
        hw_spikes += hw.step(cfg.scaleWeight(raw));
        maskState(hw.state(), keep_bits, cfg.numSynapseTypes);
    }
    if (ref_spikes == 0)
        return 0.0;
    return 100.0 * std::abs(hw_spikes - ref_spikes) /
           static_cast<double>(ref_spikes);
}

} // namespace

int
main()
{
    std::printf("=== Ablation: fraction-bit sweep (the paper's "
                "Q10.22 choice) ===\n\n");
    std::printf("Spike-count error vs the double-precision "
                "reference, 40k steps:\n\n");

    const std::vector<int> widths = {6, 8, 10, 12, 16, 22};
    std::vector<std::string> header = {"Model"};
    for (int w : widths)
        header.push_back("f" + std::to_string(w) + " err%");
    Table table(header);

    for (ModelKind kind :
         {ModelKind::LIF, ModelKind::DLIF, ModelKind::Izhikevich,
          ModelKind::AdEx, ModelKind::IFCondExpGsfaGrr}) {
        std::vector<std::string> row = {modelName(kind)};
        for (int w : widths)
            row.push_back(Table::num(rateError(kind, w, 40000, 5), 2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::printf("\nExpected shape: errors blow up below ~10-12 "
                "fraction bits (per-step decay\nfactors like "
                "1 - eps_m = 0.99 need fine resolution) and are "
                "negligible at 22 bits,\njustifying the paper's "
                "format.\n");
    return 0;
}
