/**
 * @file
 * Ablation: energy per spike and per synaptic event — the standard
 * cross-paper neuromorphic metrics (TrueNorth reports ~26 pJ per
 * synaptic event at 65 nm; biological cortex is estimated around
 * 10 fJ). Computed from the Table VI array power and the measured
 * activity of each Table I benchmark at 1/10 scale on the folded
 * backend, then compared with the CPU baseline's energy per spike.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "hwmodel/array_cost.hh"
#include "hwmodel/baselines.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: energy per spike / per synaptic "
                "event ===\n\n");

    const ArrayCost folded = foldedArrayCost();
    const double cpu_watts = platformPowerW(Platform::CpuXeon);

    Table table({"SNN", "rate", "folded nJ/spike", "folded pJ/event",
                 "CPU uJ/spike"});
    std::vector<double> pj_per_event;

    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        BenchmarkInstance inst = buildBenchmark(spec, 10.0, 4);
        SimulatorOptions opts;
        opts.backend = BackendKind::Folded;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(2000);
        const PhaseStats &st = sim.stats();
        if (st.spikes == 0 || st.synapseEvents == 0) {
            table.addRow({spec.name, "0", "-", "-", "-"});
            continue;
        }

        // Hardware energy: the folded array's modelled time at its
        // Table VI power.
        const double hw_joules =
            st.modelNeuronSec * folded.totalPowerW;
        const double nj_per_spike =
            1e9 * hw_joules / static_cast<double>(st.spikes);
        const double pj_event =
            1e12 * hw_joules /
            static_cast<double>(st.synapseEvents);
        pj_per_event.push_back(pj_event);

        // CPU energy for the same neuron-phase work, from the
        // calibrated model at this scale.
        const double cpu_sec =
            neuronPhaseSeconds(Platform::CpuXeon, spec,
                               inst.network.numNeurons()) *
            static_cast<double>(st.steps);
        const double cpu_uj_per_spike =
            1e6 * cpu_sec * cpu_watts /
            static_cast<double>(st.spikes);

        table.addRow({spec.name, Table::num(sim.meanRate(), 4),
                      Table::num(nj_per_spike, 2),
                      Table::num(pj_event, 1),
                      Table::num(cpu_uj_per_spike, 1)});
    }
    table.print(std::cout);

    std::printf("\nGeomean: %.0f pJ per synaptic event on the "
                "folded array at these 1/10-scale,\nlow-rate "
                "instances — dominated by amortizing the whole "
                "array's %.2f W over few\nevents. At paper scale "
                "and nominal rates the figure approaches the "
                "hundreds of\npJ; event-driven designs like "
                "TrueNorth (26 pJ/event, no clocked idle power)\n"
                "and biology (~10 fJ) remain orders of magnitude "
                "ahead — the efficiency frontier\nthe paper's "
                "related work surveys. A Xeon spends microjoules "
                "per spike.\n",
                geomean(pj_per_event), folded.totalPowerW);
    return 0;
}
