/**
 * @file
 * Table VI reproduction: chip area and power of the 12-neuron Flexon
 * array and the 72-neuron spatially folded Flexon array, including
 * the state/constant SRAM (CACTI-lite), side by side with the
 * paper's published numbers.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "hwmodel/array_cost.hh"

using namespace flexon;

namespace {

void
addRows(Table &table, const ArrayCost &c, double paper_neuron_area,
        double paper_sram_area, double paper_total_area,
        double paper_neuron_power, double paper_sram_power,
        double paper_total_power)
{
    auto row = [&](const char *component, double area, double power,
                   double paper_area, double paper_power) {
        table.addRow({c.name, component, Table::num(area, 3),
                      Table::num(paper_area, 3),
                      Table::num(power, 3), Table::num(paper_power, 3)});
    };
    row("Neuron", c.neuronAreaMm2, c.neuronPowerW, paper_neuron_area,
        paper_neuron_power);
    row("SRAM", c.sramAreaMm2, c.sramPowerW, paper_sram_area,
        paper_sram_power);
    row("Total", c.totalAreaMm2, c.totalPowerW, paper_total_area,
        paper_total_power);
}

} // namespace

int
main()
{
    std::printf("=== Table VI: chip area and power of the "
                "evaluation arrays ===\n\n");

    Table table({"Array", "Component", "Area [mm^2]",
                 "Paper [mm^2]", "Power [W]", "Paper [W]"});

    const ArrayCost flexon = flexonArrayCost();
    addRows(table, flexon, 1.188, 8.070, 9.258, 0.130, 0.751, 0.881);

    const ArrayCost folded = foldedArrayCost();
    addRows(table, folded, 1.294, 6.324, 7.618, 0.305, 1.179, 1.484);

    table.print(std::cout);

    std::printf("\nConfiguration: %zu-lane Flexon @ %.0f MHz; "
                "%zu-lane folded @ %.0f MHz;\nstate SRAM provisioned "
                "for %zu neurons x %zu bits.\n",
                flexon.lanes, flexon.clockHz / 1e6, folded.lanes,
                folded.clockHz / 1e6, arrayMaxNeurons,
                worstCaseStateBits);
    std::printf("Shape check: the 72-neuron folded array fits in a "
                "*smaller* footprint than\nthe 12-neuron baseline "
                "array (%.2f vs %.2f mm^2) — the paper's headline "
                "area\nresult.\n",
                folded.totalAreaMm2, flexon.totalAreaMm2);
    return 0;
}
