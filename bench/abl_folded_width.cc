/**
 * @file
 * Ablation: folded-array width sweep.
 *
 * The paper picks 72 lanes for the folded array because Flexon's
 * footprint is ~5.4x folded Flexon's (Section VI-C: 12 x 5.43 ~ 65,
 * rounded up to 72). This bench sweeps the lane count and reports
 * area, latency on a representative large benchmark (Vogels, 10 k
 * DLIF neurons), and the resulting latency-per-area — showing the
 * paper's choice sits at the equal-silicon point against the
 * 12-lane baseline array.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "folded/array.hh"
#include "hwmodel/datapath_cost.hh"
#include "hwmodel/sram.hh"
#include "nets/table1.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: spatially folded array width sweep "
                "(Vogels, 10k DLIF neurons) ===\n\n");

    const FlexonConfig config = FlexonConfig::fromParams(
        benchmarkParams(findBenchmark("Vogels")));

    const HwCost lane = foldedNeuronCost();
    const HwCost baseline_lane = flexonNeuronCost();
    const double baseline_area = 12.0 * baseline_lane.areaUm2;

    Table table({"lanes", "neuron area [mm^2]", "vs Flexon-12 area",
                 "us/step", "ns/step/mm^2"});
    for (size_t lanes : {12, 24, 36, 72, 144, 288}) {
        FoldedFlexonArray array(lanes, 500.0e6);
        array.addPopulation(config, 10000);
        const double area_mm2 = lanes * lane.areaUm2 * 1e-6;
        const double sec =
            static_cast<double>(array.cyclesPerStep()) /
            array.clockHz();
        table.addRow(
            {std::to_string(lanes), Table::num(area_mm2, 3),
             Table::num(lanes * lane.areaUm2 / baseline_area, 2),
             Table::num(sec * 1e6, 3),
             Table::num(sec * 1e9 * area_mm2, 1)});
    }
    table.print(std::cout);

    std::printf("\nAt 72 lanes the folded array spends about the "
                "same neuron silicon as the\n12-lane baseline "
                "(ratio ~1.0) — the paper's equal-area comparison "
                "point —\nwhile latency keeps scaling down with "
                "width until the per-step pipeline\nfill/drain "
                "stops mattering.\n");
    return 0;
}
