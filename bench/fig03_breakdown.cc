/**
 * @file
 * Figure 3 reproduction: breakdown of SNN simulation latency into the
 * three per-step phases (stimulus generation, neuron computation,
 * synapse calculation) for each Table I benchmark.
 *
 * CPU bars are *measured* on this host by running the reference
 * simulator with the per-benchmark Table I solver (Euler or RKF45)
 * and timing each phase. GPU bars come from the calibrated GeNN
 * phase-share model (hwmodel/baselines), since no GPU is available.
 *
 * Expected shape (paper): neuron computation dominates the RKF45
 * benchmarks on CPU, shrinks with Euler, and still reaches up to
 * ~32 % on GPU.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "hwmodel/baselines.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Figure 3: breakdown of SNN simulation "
                "latencies ===\n\n");
    std::printf("CPU bars: measured on this host (reference "
                "simulator, Table I solver).\n");
    std::printf("GPU bars: calibrated GeNN phase-share model.\n\n");

    Table table({"SNN", "Solver", "CPU stim%", "CPU neuron%",
                 "CPU syn%", "GPU stim%", "GPU neuron%", "GPU syn%"});

    double worst_gpu_neuron = 0.0;
    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        // Scale to ~1500 neurons: large enough that the synapse
        // phase sees realistic per-spike fan-out work, small enough
        // for a quick host run. Densities, model and solver are
        // preserved, so the phase *shares* are representative.
        const double scale =
            std::max(1.0, static_cast<double>(spec.neurons) / 1500.0);
        BenchmarkInstance inst = buildBenchmark(spec, scale, 1);

        SimulatorOptions opts;
        opts.backend = BackendKind::Reference;
        opts.mode = IntegrationMode::Continuous;
        opts.solver = spec.solver;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(300);

        const PhaseStats &st = sim.stats();
        const double total = st.totalSec();
        const PhaseShares gpu =
            phaseShares(Platform::GpuTitanX, spec);
        worst_gpu_neuron = std::max(worst_gpu_neuron, gpu.neuron);

        table.addRow({spec.name, solverName(spec.solver),
                      Table::num(100.0 * st.stimulusSec / total, 1),
                      Table::num(100.0 * st.neuronSec / total, 1),
                      Table::num(100.0 * st.synapseSec / total, 1),
                      Table::num(100.0 * gpu.stimulus, 1),
                      Table::num(100.0 * gpu.neuron, 1),
                      Table::num(100.0 * gpu.synapse, 1)});
    }
    table.print(std::cout);

    std::printf("\nGPU neuron-computation share peaks at %.1f%% "
                "(paper: up to 32.2%%).\n",
                100.0 * worst_gpu_neuron);
    std::printf("Shape check: neuron computation should dominate "
                "RKF45 CPU rows and remain\nsignificant everywhere "
                "else, motivating specialized neuron hardware "
                "(Section III).\n");
    return 0;
}
