/**
 * @file
 * Figure 12 reproduction: power consumption and chip area of the ten
 * per-feature data paths, the baseline Flexon, and spatially folded
 * Flexon, from the calibrated 45 nm unit-cost model.
 *
 * Expected shape (paper): every per-feature data path is far cheaper
 * than the full neuron; Flexon costs ~5.4-5.8x the area and up to
 * ~3.4x the power of spatially folded Flexon; folded is cheaper than
 * the heavy stand-alone paths (EXI, RR) because it shares the
 * multiplier/adder/exp units.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "hwmodel/datapath_cost.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Figure 12: power and chip area of the "
                "per-feature data paths, Flexon,\nand spatially "
                "folded Flexon (TSMC 45 nm model) ===\n\n");

    const UnitCosts &process = tsmc45();
    Table table({"Circuit", "MULs", "ADDs", "EXPs",
                 "Area [um^2]", "Power [mW]"});

    // Per-feature data paths at the baseline 250 MHz clock. The
    // CUB/EXD/LID trio shares one data path (Figure 9a).
    const std::vector<std::pair<std::string, UnitCounts>> circuits = {
        {"CUB+EXD+LID", featureDatapathUnits(Feature::EXD)},
        {"COBE", featureDatapathUnits(Feature::COBE)},
        {"COBA", featureDatapathUnits(Feature::COBA)},
        {"REV", featureDatapathUnits(Feature::REV)},
        {"QDI", featureDatapathUnits(Feature::QDI)},
        {"EXI", featureDatapathUnits(Feature::EXI)},
        {"ADT", featureDatapathUnits(Feature::ADT)},
        {"SBT", featureDatapathUnits(Feature::SBT)},
        {"RR", featureDatapathUnits(Feature::RR)},
        {"AR", featureDatapathUnits(Feature::AR)},
    };

    for (const auto &[name, units] : circuits) {
        const HwCost c = costOf(units, process, 250.0e6);
        table.addRow({name, std::to_string(units.mul),
                      std::to_string(units.add),
                      std::to_string(units.exp),
                      Table::num(c.areaUm2, 0),
                      Table::num(c.powerMw, 3)});
    }

    const UnitCounts flexon_units = flexonUnits();
    const HwCost flexon = flexonNeuronCost();
    table.addRow({"Flexon (250 MHz)",
                  std::to_string(flexon_units.mul),
                  std::to_string(flexon_units.add),
                  std::to_string(flexon_units.exp),
                  Table::num(flexon.areaUm2, 0),
                  Table::num(flexon.powerMw, 3)});

    const UnitCounts folded_units = foldedUnits();
    const HwCost folded = foldedNeuronCost();
    table.addRow({"Folded Flexon (500 MHz)",
                  std::to_string(folded_units.mul),
                  std::to_string(folded_units.add),
                  std::to_string(folded_units.exp),
                  Table::num(folded.areaUm2, 0),
                  Table::num(folded.powerMw, 3)});

    table.print(std::cout);

    std::printf("\n=== Process-node projection (first-order "
                "scaling, planning aid) ===\n\n");
    Table nodes({"Node", "Flexon neuron [um^2]",
                 "Folded neuron [um^2]", "12-lane Flexon [mm^2]",
                 "72-lane folded [mm^2]"});
    for (double nm : {45.0, 28.0, 16.0, 7.0}) {
        const UnitCosts scaled = scaleToNode(process, 45.0, nm);
        const double base_area =
            costOf(flexonUnits(), scaled, 250.0e6).areaUm2;
        const double fold_area =
            costOf(foldedUnits(), scaled, 500.0e6).areaUm2;
        nodes.addRow({Table::num(nm, 0) + " nm",
                      Table::num(base_area, 0),
                      Table::num(fold_area, 0),
                      Table::num(12.0 * base_area * 1e-6, 3),
                      Table::num(72.0 * fold_area * 1e-6, 3)});
    }
    nodes.print(std::cout);

    std::printf("\nFold factors: area %.2fx, power %.2fx "
                "(paper: up to 5.84x area, 3.44x power;\nTable VI "
                "implies ~5.4x area, ~2.6x power at the design "
                "clocks).\n",
                flexon.areaUm2 / folded.areaUm2,
                flexon.powerMw / folded.powerMw);

    const double exi = costOf(featureDatapathUnits(Feature::EXI),
                              process, 500.0e6)
                           .areaUm2;
    const double rr = costOf(featureDatapathUnits(Feature::RR),
                             process, 500.0e6)
                          .areaUm2;
    std::printf("Folded Flexon (%.0f um^2) vs heavy stand-alone "
                "paths: EXI+RR = %.0f um^2\n(the folding eliminates "
                "their redundant units, Section VI-B).\n",
                folded.areaUm2, exi + rr);
    return 0;
}
