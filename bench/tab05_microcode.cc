/**
 * @file
 * Tables IV/V reproduction: the control-signal programs spatially
 * folded Flexon executes for each biologically common feature
 * combination, with the full disassembly and per-model latencies
 * (Section V-B: LIF takes one signal / two cycles, QDI three cycles).
 */

#include <cstdio>
#include <iostream>

#include "backend/codegen.hh"
#include "common/table.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Table V: control-signal programs on spatially "
                "folded Flexon ===\n\n");

    for (ModelKind kind : allModels()) {
        const CompiledNeuron compiled = compileModel(kind);
        std::printf("--- %s (%s) ---\n", modelName(kind),
                    compiled.params.features.toString().c_str());
        std::printf("%s", compiled.program.disassemble().c_str());
        std::printf("  => %zu control signals, %zu-cycle latency on "
                    "the 2-stage pipeline\n\n",
                    compiled.programLength(),
                    compiled.program.latencyCycles());
    }

    std::printf("=== Summary ===\n\n");
    Table table({"Model", "Signals", "Latency [cycles]",
                 "MUL consts", "ADD consts"});
    for (ModelKind kind : allModels()) {
        const CompiledNeuron c = compileModel(kind);
        table.addRow(
            {modelName(kind), std::to_string(c.programLength()),
             std::to_string(c.program.latencyCycles()),
             std::to_string(c.program.mulConstants().size()),
             std::to_string(c.program.addConstants().size())});
    }
    table.print(std::cout);

    std::printf("\nHardware limits (Table IV): %zu MUL constant "
                "slots (ca[3:0]), %zu ADD constant\nslots (cb[2:0]); "
                "every compiled model fits.\n",
                maxMulConstants, maxAddConstants);
    std::printf("Paper checks: LIF (CUB+EXD) needs a single control "
                "signal; QDI needs two\n(structural hazard on the "
                "single multiplier), i.e. three-cycle latency.\n");
    return 0;
}
