/**
 * @file
 * Ablation: synaptic weight precision.
 *
 * The synapse SRAM dominates the array budgets (Table VI), and
 * TrueNorth-class designs store low-precision weights to shrink it.
 * This ablation quantizes the Vogels-Abbott weights to k bits
 * (signed, scaled to the observed weight range), reruns the network,
 * and reports the spike-rate deviation and train coincidence against
 * the full-precision run — showing how much weight memory a
 * Flexon-based system could actually save.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/spike_train.hh"
#include "common/table.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

/** Quantize every weight to k signed bits over [-max, max]. */
void
quantizeWeights(Network &net, int bits)
{
    float max_abs = 0.0f;
    for (uint32_t n = 0; n < net.numNeurons(); ++n)
        for (const Synapse &s : net.outgoing(n))
            max_abs = std::max(max_abs, std::abs(s.weight));
    if (max_abs == 0.0f)
        return;
    const double levels = static_cast<double>(1 << (bits - 1)) - 1;
    for (uint32_t n = 0; n < net.numNeurons(); ++n) {
        const uint64_t base = net.rowStart(n);
        const size_t count = net.outgoing(n).size();
        for (size_t i = 0; i < count; ++i) {
            Synapse &s = net.synapseAt(base + i);
            const double q =
                std::round(s.weight / max_abs * levels);
            s.weight = static_cast<float>(q / levels * max_abs);
        }
    }
}

struct RunResult
{
    double rate;
    std::vector<SpikeEvent> events;
    size_t neurons;
};

RunResult
run(int bits)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 11);
    if (bits > 0)
        quantizeWeights(inst.network, bits);
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    opts.recordSpikes = true;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(3000);
    return {sim.meanRate(), sim.spikeEvents(),
            inst.network.numNeurons()};
}

} // namespace

int
main()
{
    std::printf("=== Ablation: synaptic weight precision "
                "(Vogels-Abbott, folded backend) ===\n\n");

    const RunResult full = run(0);
    Table table({"weight bits", "rate", "rate delta%",
                 "coincidence@2ms", "weight SRAM saved"});
    table.addRow({"float32", Table::num(full.rate, 5), "0.00", "1.000",
                  "-"});

    for (int bits : {16, 12, 8, 6, 4, 2}) {
        const RunResult q = run(bits);
        const double delta =
            100.0 * std::abs(q.rate - full.rate) / full.rate;
        const double coin =
            compareRuns(full.events, q.events, full.neurons, 20);
        char saved[16];
        std::snprintf(saved, sizeof(saved), "%.0f%%",
                      100.0 * (1.0 - bits / 32.0));
        table.addRow({std::to_string(bits), Table::num(q.rate, 5),
                      Table::num(delta, 2), Table::num(coin, 3),
                      saved});
    }
    table.print(std::cout);

    std::printf("\nExpected shape: activity statistics survive down "
                "to ~6-8 bits (75%% less\nweight SRAM), then degrade "
                "sharply — consistent with TrueNorth-class designs\n"
                "shipping narrow weights.\n");
    return 0;
}
