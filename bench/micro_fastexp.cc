/**
 * @file
 * Microbenchmark + accuracy report for the Schraudolph fast-exp
 * approximation (Section IV-B1: Flexon's exponentiation unit uses it
 * to cut critical-path delay and power).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "fixed/fast_exp.hh"

namespace flexon {
namespace {

void
BM_StdExp(benchmark::State &state)
{
    double x = -3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(std::exp(x));
        x += 1e-6;
        if (x > 3.0)
            x = -3.0;
    }
}

void
BM_FastExp(benchmark::State &state)
{
    double x = -3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fastExp(x));
        x += 1e-6;
        if (x > 3.0)
            x = -3.0;
    }
}

void
BM_FixedExp(benchmark::State &state)
{
    Fix x = Fix::fromDouble(-3.0);
    const Fix step = Fix::fromDouble(1e-4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fixedExp(x));
        x += step;
        if (x > Fix::fromDouble(3.0))
            x = Fix::fromDouble(-3.0);
    }
}

/** Report the worst relative error over the Flexon operating range. */
void
BM_AccuracyReport(benchmark::State &state)
{
    double worst = 0.0;
    for (auto _ : state) {
        worst = 0.0;
        for (double y = -5.0; y <= 2.5; y += 1e-3) {
            const double rel =
                std::abs(fastExp(y) / std::exp(y) - 1.0);
            worst = std::max(worst, rel);
        }
        benchmark::DoNotOptimize(worst);
    }
    state.counters["worst_rel_error"] = worst;
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_StdExp);
BENCHMARK(flexon::BM_FastExp);
BENCHMARK(flexon::BM_FixedExp);
BENCHMARK(flexon::BM_AccuracyReport);
