/**
 * @file
 * Figure 13 reproduction: neuron-computation latency speedups (13a)
 * and energy-efficiency improvements (13b) of the 12-neuron Flexon
 * array and the 72-neuron spatially folded Flexon array over the
 * server-class CPU and GPU, for one simulation time step of each
 * Table I SNN at its published size.
 *
 * Array times come from the cycle-accurate timing model (single
 * cycle per neuron for Flexon; control signals on the 2-stage
 * pipeline for folded). CPU/GPU times come from the calibrated
 * platform models. Energy = platform/array power x time.
 *
 * Expected shape (paper): geomean latency speedups 87.4x/8.19x
 * (Flexon vs CPU/GPU) and 122.5x/9.83x (folded); energy-efficiency
 * improvements of 3-4 orders of magnitude vs CPU and 2-3 vs GPU;
 * folded loses latency to baseline Flexon only on the Destexhe
 * benchmarks (long AdEx control-signal programs), and baseline
 * Flexon is the more energy-efficient of the two arrays.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "flexon/array.hh"
#include "folded/array.hh"
#include "hwmodel/array_cost.hh"
#include "hwmodel/baselines.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

/** Per-benchmark modelled neuron-computation times for one step. */
struct StepTimes
{
    double cpu;
    double gpu;
    double flexon;
    double folded;
};

StepTimes
modelStepTimes(const BenchmarkSpec &spec)
{
    const size_t n = spec.neurons;
    StepTimes t;
    t.cpu = neuronPhaseSeconds(Platform::CpuXeon, spec, n);
    t.gpu = neuronPhaseSeconds(Platform::GpuTitanX, spec, n);

    const FlexonConfig config =
        FlexonConfig::fromParams(benchmarkParams(spec));

    FlexonArray flexon_array;
    flexon_array.addPopulation(config, n);
    t.flexon = static_cast<double>(flexon_array.cyclesPerStep()) /
               flexon_array.clockHz();

    FoldedFlexonArray folded_array;
    folded_array.addPopulation(config, n);
    t.folded = static_cast<double>(folded_array.cyclesPerStep()) /
               folded_array.clockHz();
    return t;
}

} // namespace

int
main()
{
    std::printf("=== Figure 13a: neuron-computation latency, one "
                "time step at paper scale ===\n\n");

    const double p_cpu = platformPowerW(Platform::CpuXeon);
    const double p_gpu = platformPowerW(Platform::GpuTitanX);
    const double p_flexon = flexonArrayCost().totalPowerW;
    const double p_folded = foldedArrayCost().totalPowerW;

    Table lat({"SNN", "CPU [us]", "GPU [us]", "Flexon12 [us]",
               "Folded72 [us]", "Flx/CPU", "Flx/GPU", "Fld/CPU",
               "Fld/GPU"});
    std::vector<double> sp_fc, sp_fg, sp_dc, sp_dg;
    std::vector<double> ee_fc, ee_fg, ee_dc, ee_dg;

    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        const StepTimes t = modelStepTimes(spec);
        sp_fc.push_back(t.cpu / t.flexon);
        sp_fg.push_back(t.gpu / t.flexon);
        sp_dc.push_back(t.cpu / t.folded);
        sp_dg.push_back(t.gpu / t.folded);
        ee_fc.push_back((t.cpu * p_cpu) / (t.flexon * p_flexon));
        ee_fg.push_back((t.gpu * p_gpu) / (t.flexon * p_flexon));
        ee_dc.push_back((t.cpu * p_cpu) / (t.folded * p_folded));
        ee_dg.push_back((t.gpu * p_gpu) / (t.folded * p_folded));

        lat.addRow({spec.name, Table::num(t.cpu * 1e6, 2),
                    Table::num(t.gpu * 1e6, 2),
                    Table::num(t.flexon * 1e6, 2),
                    Table::num(t.folded * 1e6, 2),
                    Table::ratio(sp_fc.back(), 1),
                    Table::ratio(sp_fg.back(), 1),
                    Table::ratio(sp_dc.back(), 1),
                    Table::ratio(sp_dg.back(), 1)});
    }
    lat.print(std::cout);

    std::printf("\nGeomean speedups: Flexon %.1fx / %.2fx over "
                "CPU / GPU (paper: 87.4x / 8.19x);\n"
                "folded %.1fx / %.2fx (paper: 122.5x / 9.83x).\n",
                geomean(sp_fc), geomean(sp_fg), geomean(sp_dc),
                geomean(sp_dg));

    std::printf("\n=== Figure 13b: energy-efficiency improvements "
                "===\n\n");
    Table ee({"SNN", "Flx/CPU", "Flx/GPU", "Fld/CPU", "Fld/GPU"});
    for (size_t i = 0; i < table1Benchmarks().size(); ++i) {
        ee.addRow({table1Benchmarks()[i].name,
                   Table::ratio(ee_fc[i], 0), Table::ratio(ee_fg[i], 0),
                   Table::ratio(ee_dc[i], 0),
                   Table::ratio(ee_dg[i], 0)});
    }
    ee.print(std::cout);
    std::printf("\nGeomean energy-efficiency improvements: Flexon "
                "%.0fx / %.0fx over CPU / GPU\n(paper: 6186x / "
                "442x); folded %.0fx / %.0fx (paper: 5415x / "
                "135x).\n",
                geomean(ee_fc), geomean(ee_fg), geomean(ee_dc),
                geomean(ee_dg));

    // Trade-off shape checks (Section VI-C).
    int folded_latency_losses = 0;
    for (size_t i = 0; i < sp_fc.size(); ++i)
        folded_latency_losses += (sp_dc[i] < sp_fc[i]);
    std::printf("\nTrade-offs: folded loses latency to baseline on "
                "%d/10 benchmarks (paper: the\ntwo Destexhe SNNs, "
                "whose AdEx programs are long); baseline Flexon has "
                "the better\nenergy efficiency on %s of the "
                "benchmarks.\n",
                folded_latency_losses,
                geomean(ee_fc) > geomean(ee_dc) ? "most" : "few");

    // Functional sanity: run one scaled benchmark end to end on the
    // folded array backend to show the modelled hardware actually
    // simulates the network.
    const BenchmarkSpec &va = findBenchmark("Vogels-Abbott");
    BenchmarkInstance inst = buildBenchmark(va, 10.0, 3);
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(1000);
    std::printf("\nFunctional check: Vogels-Abbott (1/10 scale) on "
                "the folded array backend:\n%llu spikes over 1000 "
                "steps (mean rate %.4f spikes/neuron/step), modelled "
                "hardware\ntime %.3f ms.\n",
                static_cast<unsigned long long>(sim.stats().spikes),
                sim.meanRate(), sim.stats().modelNeuronSec * 1e3);
    return 0;
}
