/**
 * @file
 * Figures 4-8 reproduction: the characteristic behaviour of each
 * biologically common feature category, as membrane/state traces.
 *
 *   Figure 4 — membrane decay: exponential (EXD) vs linear (LID)
 *   Figure 5 — input spike accumulation: CUB vs COBE vs COBA
 *   Figure 6 — spike initiation: instant vs quadratic vs exponential
 *   Figure 7 — spike-triggered current: adaptation (ADT) and
 *              subthreshold oscillation (SBT)
 *   Figure 8 — refractory: absolute (AR) vs relative (RR)
 *
 * All traces come from the double-precision reference neurons; the
 * same programs run bit-compatibly on both Flexon models (see
 * tests/test_flexon_neuron.cc).
 */

#include <cstdio>
#include <vector>

#include "analysis/trace_plot.hh"
#include "features/model_table.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

/** Record v for `steps` steps under a per-step input schedule. */
std::vector<double>
traceV(ReferenceNeuron &neuron,
       const std::vector<double> &schedule, int steps,
       std::vector<size_t> *spikes = nullptr)
{
    std::vector<double> v;
    v.reserve(static_cast<size_t>(steps));
    for (int t = 0; t < steps; ++t) {
        const double in =
            t < static_cast<int>(schedule.size()) ? schedule[t] : 0.0;
        if (neuron.step(in) && spikes)
            spikes->push_back(static_cast<size_t>(t));
        v.push_back(neuron.state().v);
    }
    return v;
}

} // namespace

int
main()
{
    TracePlotOptions plot;
    plot.rows = 10;

    // ----- Figure 4: membrane decay --------------------------------
    std::printf("=== Figure 4: membrane decay (from v = 0.8, no "
                "input) ===\n\n");
    NeuronParams exd = defaultParams(ModelKind::SLIF);
    NeuronParams lid = defaultParams(ModelKind::LLIF);
    ReferenceNeuron n_exd(exd), n_lid(lid);
    n_exd.state().v = 0.8;
    n_lid.state().v = 0.8;
    const auto v_exd = traceV(n_exd, {}, 500);
    const auto v_lid = traceV(n_lid, {}, 500);
    std::printf("%s\n",
                renderTraces({v_exd, v_lid},
                             {"EXD (exponential)", "LID (linear)"},
                             plot)
                    .c_str());
    std::printf("EXD approaches rest asymptotically; LID hits the "
                "floor at step %d and stays.\n\n",
                static_cast<int>(0.8 / lid.vLeak));

    // ----- Figure 5: input spike accumulation ----------------------
    std::printf("=== Figure 5: accumulation of one input spike at "
                "t = 20 ===\n\n");
    std::vector<double> impulse(21, 0.0);
    impulse[20] = 0.5;
    std::vector<double> impulse_cub(21, 0.0);
    impulse_cub[20] = 50.0; // CUB currents need epsilon_m scaling
    NeuronParams cub = defaultParams(ModelKind::SLIF);
    NeuronParams cobe = defaultParams(ModelKind::DSRM0);
    NeuronParams coba = defaultParams(ModelKind::IFPscAlpha);
    ReferenceNeuron n_cub(cub), n_cobe(cobe), n_coba(coba);
    const auto v_cub = traceV(n_cub, impulse_cub, 400);
    const auto v_cobe = traceV(n_cobe, impulse, 400);
    const auto v_coba = traceV(n_coba, impulse, 400);
    std::printf("%s\n",
                renderTraces({v_cub, v_cobe, v_coba},
                             {"CUB (instant)", "COBE (exp kernel)",
                              "COBA (alpha kernel)"},
                             plot)
                    .c_str());
    std::printf("CUB jumps instantly and decays; COBE rises at the "
                "spike and relaxes; COBA's\nalpha kernel rises "
                "gradually to a delayed peak (Figure 5's three "
                "panels).\n\n");

    // ----- Figure 6: spike initiation ------------------------------
    std::printf("=== Figure 6: spike initiation above the "
                "threshold theta = 1 ===\n\n");
    NeuronParams qdi = defaultParams(ModelKind::QIF);
    NeuronParams exi = defaultParams(ModelKind::EIF);
    ReferenceNeuron n_qdi(qdi), n_exi(exi);
    // Start all above the soft threshold and watch the upswing.
    n_qdi.state().v = 1.02;
    n_exi.state().v = 1.42;
    std::vector<size_t> s_qdi, s_exi;
    // Plot just past the first spike so the upswing dominates.
    const auto v_qdi = traceV(n_qdi, {}, 45, &s_qdi);
    const auto v_exi = traceV(n_exi, {}, 45, &s_exi);
    std::printf("%s\n",
                renderTraces({v_qdi, v_exi},
                             {"QDI (quadratic)", "EXI (exponential)"},
                             plot)
                    .c_str());
    std::printf("Both exceed theta = 1 *without firing yet*: the "
                "initiation function drives a\ngradual upswing to "
                "the firing voltage (QDI fires at step %zu, EXI at "
                "%zu), unlike\nthe instant LIF reset.\n\n",
                s_qdi.empty() ? 0 : s_qdi.front(),
                s_exi.empty() ? 0 : s_exi.front());

    // ----- Figure 7: spike-triggered current -----------------------
    std::printf("=== Figure 7: spike-triggered current under "
                "constant drive ===\n\n");
    NeuronParams adt = defaultParams(ModelKind::Izhikevich);
    ReferenceNeuron n_adt(adt);
    std::vector<size_t> s_adt;
    std::vector<double> w_adt;
    for (int t = 0; t < 3000; ++t) {
        if (n_adt.step(0.05))
            s_adt.push_back(static_cast<size_t>(t));
        w_adt.push_back(n_adt.state().w);
    }
    std::printf("ADT: adaptation current w (note the jump at every "
                "spike and the slow decay):\n%s",
                renderTrace(w_adt, s_adt, plot).c_str());
    if (s_adt.size() >= 3) {
        std::printf("inter-spike intervals stretch: %zu -> %zu "
                    "steps.\n\n",
                    s_adt[1] - s_adt[0],
                    s_adt.back() - s_adt[s_adt.size() - 2]);
    }

    NeuronParams sbt = defaultParams(ModelKind::AdEx);
    sbt.a = -0.08; // strong coupling for a visible oscillation
    sbt.epsW = 0.02;
    ReferenceNeuron n_sbt(sbt);
    const std::vector<double> kick = {0.0, 4.0}; // kick at t = 1
    const auto v_sbt = traceV(n_sbt, kick, 600);
    std::printf("SBT: damped subthreshold oscillation after one "
                "kick:\n%s\n",
                renderTrace(v_sbt, {}, plot).c_str());

    // ----- Figure 8: refractory ------------------------------------
    std::printf("=== Figure 8: refractory under strong constant "
                "drive ===\n\n");
    NeuronParams ar = defaultParams(ModelKind::SLIF);
    ar.arSteps = 60;
    ReferenceNeuron n_ar(ar);
    std::vector<size_t> s_ar;
    const auto v_ar =
        traceV(n_ar, std::vector<double>(1200, 3.0), 1200, &s_ar);
    std::printf("AR: the input is gated off for 60 steps after each "
                "spike (flat valleys):\n%s",
                renderTrace(v_ar, s_ar, plot).c_str());
    if (s_ar.size() >= 2) {
        std::printf("ISI = %zu steps = refractory + recharge.\n\n",
                    s_ar[1] - s_ar[0]);
    }

    NeuronParams rr = defaultParams(ModelKind::IFCondExpGsfaGrr);
    ReferenceNeuron n_rr(rr);
    std::vector<size_t> s_rr;
    std::vector<double> r_rr;
    for (int t = 0; t < 1200; ++t) {
        if (n_rr.step(0.10))
            s_rr.push_back(static_cast<size_t>(t));
        r_rr.push_back(n_rr.state().r);
    }
    std::printf("RR: the refractory conductance r jumps at each "
                "spike and decays, transiently\nsuppressing (but "
                "not forbidding) further spikes:\n%s",
                renderTrace(r_rr, s_rr, plot).c_str());
    return 0;
}
