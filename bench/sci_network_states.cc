/**
 * @file
 * Scientific validation: the Table I benchmarks exist because they
 * produced neuroscience results. This bench reproduces two of those
 * results *on the Flexon hardware model*, demonstrating that the
 * accelerator preserves the science and not just the throughput:
 *
 *  1. Vogels-Abbott (J. Neurosci. 2005): a sparsely connected
 *     conductance-based E/I network self-organizes into the
 *     asynchronous-irregular (AI) state — irregular single-neuron
 *     firing (CV(ISI) ~ 1) with low population synchrony.
 *
 *  2. Brunel (J. Comput. Neurosci. 2000): sweeping the relative
 *     inhibition strength g moves the network from a synchronized,
 *     fast-firing regime (g small: excitation dominates) to the
 *     asynchronous-irregular regime (g large: inhibition dominates)
 *     with lower rates and higher irregularity.
 */

#include <cstdio>
#include <iostream>

#include "analysis/spike_train.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "features/model_table.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

struct StateMetrics
{
    double rate;      ///< spikes per neuron per step
    double cv;        ///< mean CV(ISI) of active neurons
    double synchrony; ///< Golomb chi^2 over 5 ms bins
};

StateMetrics
measure(const Network &net, StimulusGenerator stim, uint64_t steps,
        BackendKind backend)
{
    SimulatorOptions opts;
    opts.backend = backend;
    opts.recordSpikes = true;
    Simulator sim(net, stim, opts);
    sim.run(steps);

    const auto trains =
        groupByNeuron(sim.spikeEvents(), net.numNeurons());
    Summary cv;
    for (const auto &train : trains) {
        const TrainStats s = trainStats(train, steps);
        if (s.spikes >= 5)
            cv.add(s.cvIsi);
    }
    return {sim.meanRate(), cv.mean(),
            synchronyIndex(sim.spikeEvents(), net.numNeurons(),
                           steps, 50)};
}

/** Brunel-style network: DLIF E/I with inhibition ratio g. */
Network
brunelNetwork(double g, uint64_t seed)
{
    Network net;
    const NeuronParams p = defaultParams(ModelKind::DLIF);
    const size_t exc = net.addPopulation("exc", p, 320);
    const size_t inh = net.addPopulation("inh", p, 80);
    Rng rng(seed);
    // REV convention: inhibitory weights are positive conductance
    // increments; the inhibitory reversal (v_g = -1) supplies the
    // sign.
    const double we = 0.06;
    net.connectRandom(exc, exc, 0.1, we, 1, 6, 0, rng);
    net.connectRandom(exc, inh, 0.1, we, 1, 6, 0, rng);
    net.connectRandom(inh, exc, 0.1, g * we, 1, 6, 1, rng);
    net.connectRandom(inh, inh, 0.1, g * we, 1, 6, 1, rng);
    net.finalize();
    return net;
}

StimulusGenerator
background(uint64_t seed, uint32_t neurons, double rate, float w)
{
    StimulusGenerator stim(seed);
    stim.addSource(StimulusSource::poisson(0, neurons, rate, w, 0));
    return stim;
}

} // namespace

int
main()
{
    // ----- 1. Vogels-Abbott AI state on the folded array. ----------
    std::printf("=== Vogels-Abbott: the asynchronous-irregular "
                "state on folded Flexon ===\n\n");
    {
        Network net = brunelNetwork(4.0, 2026); // VA-like balance
        const StateMetrics m =
            measure(net, background(7, 400, 0.01, 2.0f), 20000,
                    BackendKind::Folded);
        std::printf("rate %.4f spikes/neuron/step, CV(ISI) %.2f, "
                    "synchrony chi^2 %.3f\n\n",
                    m.rate, m.cv, m.synchrony);
        std::printf("AI-state checks: sustained but moderate rate "
                    "(%.1f Hz at the 0.1 ms step),\nirregular "
                    "firing (CV near 1: %s), low synchrony "
                    "(chi^2 << 1: %s).\n\n",
                    m.rate * 10000.0,
                    m.cv > 0.5 ? "yes" : "NO",
                    m.synchrony < 0.3 ? "yes" : "NO");
    }

    // ----- 2. Brunel g-sweep on the folded array. ------------------
    std::printf("=== Brunel: inhibition sweep (g = inhibitory/"
                "excitatory weight ratio) ===\n\n");
    Table table({"g", "rate", "CV(ISI)", "synchrony chi^2",
                 "regime"});
    double first_rate = 0.0, last_rate = 0.0;
    double first_sync = 0.0, last_sync = 0.0;
    const std::vector<double> gs = {0.5, 2.0, 4.0, 6.0, 8.0};
    for (double g : gs) {
        Network net = brunelNetwork(g, 99);
        const StateMetrics m =
            measure(net, background(13, 400, 0.01, 2.0f), 10000,
                    BackendKind::Folded);
        const bool regular = m.cv < 0.6;
        table.addRow({Table::num(g, 1), Table::num(m.rate, 4),
                      Table::num(m.cv, 2), Table::num(m.synchrony, 3),
                      regular ? "regular (E-dominated)"
                              : "irregular (I-dominated)"});
        if (g == gs.front()) {
            first_rate = m.rate;
            first_sync = m.synchrony;
        }
        if (g == gs.back()) {
            last_rate = m.rate;
            last_sync = m.synchrony;
        }
    }
    table.print(std::cout);

    std::printf("\nExpected shape (Brunel 2000): increasing "
                "inhibition lowers the rate (%.4f ->\n%.4f), "
                "drives firing irregular (CV rising past 1), and "
                "keeps synchrony low\n(chi^2 %.3f -> %.3f) — the "
                "transition from the excitation-dominated to the\n"
                "inhibition-dominated regime, computed entirely by "
                "the folded Flexon datapath.\n",
                first_rate, last_rate, first_sync, last_sync);
    return 0;
}
