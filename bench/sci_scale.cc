/**
 * @file
 * Connectivity scale sweep (the PR 7 memory study): the same
 * Vogels-Abbott network grown 1x / 10x / 50x, run under each
 * ConnectivityProvider, with peak RSS measured per configuration.
 *
 * Peak RSS (getrusage ru_maxrss) is a whole-process high-water mark
 * that cannot be reset, so the driver re-executes itself once per
 * configuration (`--child`) and each child reports its own maximum.
 * The parent collects the lines, cross-checks that every provider
 * produced the same spike hash at each growth (the bit-identity
 * contract, cheap to re-verify here), and writes a google-benchmark
 * compatible record (default BENCH_connectivity.json) that
 * tools/bench_diff can gate on — including the per-entry
 * peak_rss_bytes and connectivity_bytes counters its memory check
 * reads.
 *
 * Environment:
 *   FLEXON_BENCH_GROWTH        comma list of growth factors
 *                              (default "1,10,50")
 *   FLEXON_BENCH_RSS_CEILING   bytes; materialized/compressed
 *                              configurations whose estimated
 *                              footprint exceeds this are skipped
 *                              and recorded as estimates (0 = run
 *                              everything, the default)
 *   FLEXON_BENCH_PROC_CEILING  bytes; if set, a procedural run whose
 *                              measured peak RSS exceeds this fails
 *                              the sweep (the CI memory-budget gate)
 *
 * A growth-50 Vogels-Abbott instance is ~200k neurons / ~800M
 * synapses: materialized storage wants tens of GB and busts any CI
 * ceiling, while the procedural provider regenerates rows on demand
 * and completes in tens of MB. That asymmetry — recorded, not
 * claimed — is the point of the sweep.
 */

#include <sys/resource.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "nets/table1.hh"
#include "plan/calibration.hh"
#include "snn/simulator.hh"

#ifndef FLEXON_BENCH_BUILD_TYPE
#define FLEXON_BENCH_BUILD_TYPE "unknown"
#endif

namespace flexon {
namespace {

constexpr uint64_t wiringSeed = 7;

uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

double
cpuSeconds()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    auto sec = [](const timeval &tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return sec(ru.ru_utime) + sec(ru.ru_stime);
}

double
wallSeconds()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Fewer steps at larger growth: the sweep measures memory, the
 *  per-step time is a secondary (but still gated) signal. */
uint64_t
stepsFor(double growth)
{
    if (growth <= 1.0)
        return 200;
    return growth <= 10.0 ? 50 : 20;
}

/**
 * One configuration, measured in this (child) process. Prints a
 * single JSON object on stdout and exits; the parent consumes the
 * line verbatim as a benchmarks[] entry.
 */
int
childMain(double growth, const std::string &kindName, size_t threads)
{
    ConnectivityKind kind = ConnectivityKind::Materialized;
    if (!parseConnectivityKind(kindName, kind)) {
        std::fprintf(stderr, "sci_scale: bad kind '%s'\n",
                     kindName.c_str());
        return 2;
    }
    const uint64_t steps = stepsFor(growth);
    BenchmarkInstance inst = buildBenchmarkSpec(
        findBenchmark("Vogels-Abbott"), growth, wiringSeed,
        kind != ConnectivityKind::Materialized);

    SimulatorOptions opts;
    opts.threads = threads;
    opts.connectivity = kind;
    Simulator sim(inst.network, inst.stimulus, opts);

    // FNV-1a over the (step, neuron) spike stream — no recording
    // buffers, so the hash costs no memory at scale.
    uint64_t hash = 1469598103934665603ULL;
    auto mix = [&hash](uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            hash ^= (v >> (b * 8)) & 0xff;
            hash *= 1099511628211ULL;
        }
    };
    const double wall0 = wallSeconds(), cpu0 = cpuSeconds();
    for (uint64_t t = 0; t < steps; ++t) {
        sim.stepOnce();
        const std::vector<uint8_t> &fired = sim.lastFired();
        for (uint32_t n = 0; n < fired.size(); ++n) {
            if (fired[n]) {
                mix(t);
                mix(n);
            }
        }
    }
    const double wallMs = (wallSeconds() - wall0) * 1e3 /
                          static_cast<double>(steps);
    const double cpuMs = (cpuSeconds() - cpu0) * 1e3 /
                         static_cast<double>(steps);

    const PhaseStats &st = sim.stats();
    std::printf(
        "{\"name\": \"ScaleSweep/g%g/%s\", \"run_type\": "
        "\"iteration\", \"iterations\": %" PRIu64
        ", \"real_time\": %.6f, \"cpu_time\": %.6f, \"time_unit\": "
        "\"ms\", \"growth\": %g, \"neurons\": %zu, \"synapses\": "
        "%zu, \"spikes\": %" PRIu64 ", \"spike_hash\": %" PRIu64
        ", \"peak_rss_bytes\": %" PRIu64 ", \"connectivity_bytes\": "
        "%" PRIu64 ", \"bytes_per_synapse\": %.4f, "
        "\"row_cache_hits\": %" PRIu64 ", \"row_cache_misses\": %"
        PRIu64 "}\n",
        growth, kindName.c_str(), steps, wallMs, cpuMs, growth,
        inst.network.numNeurons(), inst.network.numSynapses(),
        st.spikes, hash, peakRssBytes(), st.connectivityBytes,
        st.bytesPerSynapse, st.rowCacheHits, st.rowCacheMisses);
    return 0;
}

/** Pull a numeric field back out of a child's JSON line. */
bool
extractNumber(const std::string &line, const std::string &key,
              double &out)
{
    const std::string needle = "\"" + key + "\": ";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + at + needle.size(), nullptr);
    return true;
}

uint64_t
envBytes(const char *name)
{
    const char *v = std::getenv(name);
    return v == nullptr ? 0 : std::strtoull(v, nullptr, 10);
}

std::vector<double>
growthList()
{
    std::vector<double> growths;
    const char *v = std::getenv("FLEXON_BENCH_GROWTH");
    std::string text = v == nullptr ? "1,10,50" : v;
    size_t pos = 0;
    while (pos < text.size()) {
        const size_t comma = text.find(',', pos);
        const std::string tok =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const double g = std::strtod(tok.c_str(), nullptr);
        if (g > 0.0)
            growths.push_back(g);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return growths;
}

/**
 * Pre-run footprint estimates, used only to decide whether a
 * configuration fits under FLEXON_BENCH_RSS_CEILING without paying
 * for the allocation. Deliberately on the high side (build-time
 * transients included): an over-estimate skips a run that might have
 * fit, an under-estimate OOMs the host.
 */
uint64_t
estimateBytes(const std::string &kind, size_t neurons,
              size_t synapses)
{
    if (kind == "materialized") {
        // CSR synapses + delivery records + run headers/masks, plus
        // vector-growth slack while building.
        return static_cast<uint64_t>(synapses) * 34 +
               static_cast<uint64_t>(neurons) * 150 + 80000000ULL;
    }
    // Compressed: delta varints dominate (uniform projection weights
    // collapse to one float per run), plus per-(row, shard) offsets.
    return static_cast<uint64_t>(synapses) * 6 +
           static_cast<uint64_t>(neurons) * 64 + 80000000ULL;
}

int
parentMain(const char *self, const std::string &outPath,
           size_t threads)
{
    const uint64_t ceiling = envBytes("FLEXON_BENCH_RSS_CEILING");
    const uint64_t procCeiling =
        envBytes("FLEXON_BENCH_PROC_CEILING");
    static const char *const kinds[] = {"procedural", "compressed",
                                        "materialized"};

    std::vector<std::string> entries;
    bool failed = false;
    for (const double g : growthList()) {
        double refHash = 0.0;
        bool haveRef = false;
        size_t neurons = 0, synapses = 0;
        // Procedural first: it always fits, and its exact synapse
        // count feeds the skip estimates for the heavier providers.
        for (const char *kind : kinds) {
            const bool procedural =
                std::strcmp(kind, "procedural") == 0;
            if (!procedural && ceiling > 0) {
                const uint64_t estimate =
                    estimateBytes(kind, neurons, synapses);
                if (estimate > ceiling) {
                    std::fprintf(
                        stderr,
                        "sci_scale: skipping g%g/%s (estimated "
                        "%" PRIu64 " bytes over the %" PRIu64
                        "-byte ceiling)\n",
                        g, kind, estimate, ceiling);
                    char buf[256];
                    std::snprintf(
                        buf, sizeof(buf),
                        "{\"name\": \"ScaleSweep/g%g/%s\", "
                        "\"run_type\": \"iteration\", \"estimated\": "
                        "1, \"estimated_peak_rss_bytes\": %" PRIu64
                        ", \"over_ceiling_bytes\": %" PRIu64 "}",
                        g, kind, estimate, ceiling);
                    entries.push_back(buf);
                    continue;
                }
            }

            char cmd[512];
            std::snprintf(cmd, sizeof(cmd),
                          "'%s' --child %g %s %zu", self, g, kind,
                          threads);
            FILE *pipe = popen(cmd, "r");
            if (pipe == nullptr) {
                std::fprintf(stderr, "sci_scale: popen failed\n");
                return 1;
            }
            std::string line;
            char chunk[4096];
            while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr)
                line += chunk;
            const int status = pclose(pipe);
            if (status != 0 || line.empty()) {
                std::fprintf(stderr,
                             "sci_scale: child g%g/%s failed "
                             "(status %d)\n",
                             g, kind, status);
                failed = true;
                continue;
            }
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r'))
                line.pop_back();
            std::fprintf(stderr, "sci_scale: %s\n", line.c_str());
            entries.push_back(line);

            double value = 0.0;
            if (procedural) {
                if (extractNumber(line, "neurons", value))
                    neurons = static_cast<size_t>(value);
                if (extractNumber(line, "synapses", value))
                    synapses = static_cast<size_t>(value);
                if (procCeiling > 0 &&
                    extractNumber(line, "peak_rss_bytes", value) &&
                    value > static_cast<double>(procCeiling)) {
                    std::fprintf(stderr,
                                 "sci_scale: procedural g%g peak "
                                 "RSS %.0f exceeds the %" PRIu64
                                 "-byte budget\n",
                                 g, value, procCeiling);
                    failed = true;
                }
            }
            // Every provider must reproduce the same spike train.
            if (extractNumber(line, "spike_hash", value)) {
                if (!haveRef) {
                    refHash = value;
                    haveRef = true;
                } else if (value != refHash) {
                    std::fprintf(stderr,
                                 "sci_scale: spike hash mismatch at "
                                 "g%g/%s\n",
                                 g, kind);
                    failed = true;
                }
            }
        }
    }

    std::ofstream os(outPath);
    if (!os) {
        std::fprintf(stderr, "sci_scale: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    os << "{\n  \"context\": {\n"
       << "    \"executable\": \"" << self << "\",\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"project_build_type\": \"" FLEXON_BENCH_BUILD_TYPE
          "\",\n"
       << "    \"calibration_version\": \""
       << plan::activeCalibration().version << "\"\n"
       << "  },\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < entries.size(); ++i)
        os << "    " << entries[i]
           << (i + 1 < entries.size() ? "," : "") << '\n';
    os << "  ]\n}\n";
    std::fprintf(stderr, "sci_scale: wrote %zu records to %s\n",
                 entries.size(), outPath.c_str());
    return failed ? 1 : 0;
}

} // namespace
} // namespace flexon

int
main(int argc, char **argv)
{
    // Children inherit the variable, so every process in the sweep
    // (and the record's context) sees the same calibration.
    flexon::plan::installCalibrationFromEnv();
    std::string out = "BENCH_connectivity.json";
    size_t threads = 2;
    if (argc >= 2 && std::strcmp(argv[1], "--child") == 0) {
        if (argc != 5) {
            std::fprintf(stderr,
                         "usage: sci_scale --child GROWTH KIND "
                         "THREADS\n");
            return 2;
        }
        return flexon::childMain(std::strtod(argv[2], nullptr),
                                 argv[3],
                                 std::strtoul(argv[4], nullptr, 10));
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoul(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: sci_scale [--out FILE] "
                         "[--threads N]\n");
            return 2;
        }
    }
    return flexon::parentMain(argv[0], out, threads);
}
