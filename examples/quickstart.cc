/**
 * @file
 * Quickstart: describe a neuron in biological units, compile it for
 * Flexon, build a tiny recurrent network, and simulate it on all
 * three backends.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "backend/codegen.hh"
#include "snn/simulator.hh"

using namespace flexon;

int
main()
{
    // --- 1. Describe a conductance-based LIF neuron (DLIF) in
    // biological units, exactly as a PyNN-style front-end would.
    BioParams bio;
    bio.kind = ModelKind::DLIF;
    bio.dtMs = 0.1;        // 0.1 ms time step
    bio.tauMMs = 20.0;     // membrane time constant
    bio.vRestMv = -65.0;
    bio.vThreshMv = -50.0;
    bio.vResetMv = -65.0;
    bio.numSynapseTypes = 2;
    bio.syn[0] = {5.0, 0.0};    // excitatory, reversal 0 mV
    bio.syn[1] = {10.0, -80.0}; // inhibitory, reversal -80 mV
    bio.tRefMs = 2.0;

    // --- 2. Compile: shift & scale to normalized units, derive the
    // Flexon constants, and generate the folded control signals.
    const CompiledNeuron neuron = compile(bio);
    std::printf("=== Compiled neuron ===\n%s\n",
                describe(neuron).c_str());

    // --- 3. Build a small recurrent network: 80 excitatory + 20
    // inhibitory neurons, 10 %% connectivity, Poisson background.
    Network net;
    const size_t exc = net.addPopulation("exc", neuron.params, 80);
    const size_t inh = net.addPopulation("inh", neuron.params, 20);
    Rng rng(7);
    net.connectRandom(exc, exc, 0.1, 0.4, 1, 5, 0, rng);
    net.connectRandom(exc, inh, 0.1, 0.4, 1, 5, 0, rng);
    // With REV, inhibitory weights are positive conductance
    // increments; the -80 mV reversal supplies the sign.
    net.connectRandom(inh, exc, 0.1, 1.5, 1, 5, 1, rng);
    net.connectRandom(inh, inh, 0.1, 1.5, 1, 5, 1, rng);
    net.finalize();

    StimulusGenerator stim(3);
    stim.addSource(StimulusSource::poisson(0, 100, 0.02, 1.5f, 0));

    // --- 4. Simulate 100 ms (1000 steps) on each backend.
    for (BackendKind kind :
         {BackendKind::Reference, BackendKind::Flexon,
          BackendKind::Folded}) {
        SimulatorOptions opts;
        opts.backend = kind;
        Simulator sim(net, stim, opts);
        sim.run(1000);
        std::printf("%-14s: %6llu spikes, mean rate %.4f "
                    "spikes/neuron/step",
                    backendName(kind),
                    static_cast<unsigned long long>(
                        sim.stats().spikes),
                    sim.meanRate());
        if (sim.stats().modelNeuronSec > 0.0) {
            std::printf(", modelled hw time %.1f us",
                        sim.stats().modelNeuronSec * 1e6);
        }
        std::printf("\n");
    }

    std::printf("\nThe two hardware backends produce bit-identical "
                "spike trains; the reference\nbackend differs only "
                "by fixed-point rounding.\n");
    return 0;
}
