/**
 * @file
 * End-to-end benchmark run: the Vogels-Abbott network (Table I) at
 * 1/10 scale, simulated on the reference backend and on both Flexon
 * arrays, with activity statistics and the modelled hardware
 * speedup — a miniature of the paper's full evaluation.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "flexon/array.hh"
#include "hwmodel/array_cost.hh"
#include "hwmodel/baselines.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

int
main()
{
    // FLEXON_REPORT=dir writes one run-report JSON per backend (and
    // enables the deep telemetry counters that feed it).
    const char *const reportDir = std::getenv("FLEXON_REPORT");
    if (reportDir != nullptr) {
        telemetry::TelemetryConfig config;
        config.detail = true;
        telemetry::configure(config);
    }

    const BenchmarkSpec &spec = findBenchmark("Vogels-Abbott");
    std::printf("=== Vogels-Abbott (Table I): %zu neurons, %zu "
                "synapses, %s, %s ===\n\n",
                spec.neurons, spec.synapses, spec.model.c_str(),
                solverName(spec.solver));

    BenchmarkInstance inst = buildBenchmark(spec, 10.0, 2026);
    std::printf("Scaled instance: %zu neurons, %zu synapses "
                "(density preserved).\n\n",
                inst.network.numNeurons(),
                inst.network.numSynapses());

    const uint64_t steps = 5000; // 0.5 s of biological time

    double reference_neuron_sec = 0.0;
    for (BackendKind kind :
         {BackendKind::Reference, BackendKind::Flexon,
          BackendKind::Folded}) {
        SimulatorOptions opts;
        opts.backend = kind;
        if (kind == BackendKind::Reference) {
            opts.mode = IntegrationMode::Continuous;
            opts.solver = spec.solver; // RKF45, as in Table I
        }
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(steps);

        // Population firing statistics.
        Summary per_neuron;
        for (uint64_t c : sim.spikeCounts())
            per_neuron.add(static_cast<double>(c));

        std::printf("%-14s: %7llu spikes, rate %.4f/neuron/step, "
                    "per-neuron spread %.1f +/- %.1f\n",
                    backendName(kind),
                    static_cast<unsigned long long>(
                        sim.stats().spikes),
                    sim.meanRate(), per_neuron.mean(),
                    per_neuron.stddev());

        if (kind == BackendKind::Reference) {
            reference_neuron_sec = sim.stats().neuronSec;
            std::printf("                host neuron-computation "
                        "time: %.1f ms over %llu steps\n",
                        reference_neuron_sec * 1e3,
                        static_cast<unsigned long long>(steps));
        } else {
            const double hw_sec = sim.stats().modelNeuronSec;
            std::printf("                modelled hardware time: "
                        "%.2f ms (%.1fx vs host reference)\n",
                        hw_sec * 1e3, reference_neuron_sec / hw_sec);
        }

        if (reportDir != nullptr) {
            const std::string path = std::string(reportDir) +
                                     "/vogels_abbott_" +
                                     backendName(kind) + ".json";
            if (sim.writeRunReport(path))
                inform("wrote run report to %s", path.c_str());
        }
    }

    // Paper-scale projection from the calibrated platform models.
    const double cpu = neuronPhaseSeconds(Platform::CpuXeon, spec,
                                          spec.neurons);
    FlexonArray paper_scale;
    paper_scale.addPopulation(
        FlexonConfig::fromParams(benchmarkParams(spec)),
        spec.neurons);
    const double flexon_sec =
        static_cast<double>(paper_scale.cyclesPerStep()) /
        paper_scale.clockHz();
    std::printf("\nAt paper scale (%zu neurons): modelled Xeon "
                "neuron phase %.0f us/step vs\n12-neuron Flexon "
                "array %.2f us/step -> %.0fx speedup (Figure 13a "
                "row: ~123x).\n",
                spec.neurons, cpu * 1e6, flexon_sec * 1e6,
                cpu / flexon_sec);
    return 0;
}
