/**
 * @file
 * STDP learning with Flexon-simulated neurons.
 *
 * Flexon accelerates the neuron update; synaptic plasticity stays in
 * the synapse-calculation stage on the host — exactly the split a
 * deployment would use. This example trains a single readout neuron
 * (simulated on the spatially folded Flexon) to prefer a repeating
 * 10-input volley pattern over background noise, the classic
 * Masquelier & Thorpe style experiment cited in the paper's related
 * work.
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "folded/neuron.hh"
#include "snn/stdp.hh"

using namespace flexon;

int
main()
{
    constexpr uint32_t inputs = 40;
    constexpr uint32_t pattern_size = 10; // inputs 0..9 = the volley

    // The network: 40 inputs -> 1 readout (neuron id 40).
    Network net;
    NeuronParams lif = defaultParams(ModelKind::LIF);
    net.addPopulation("in", lif, inputs);
    net.addPopulation("readout", lif, 1);
    for (uint32_t i = 0; i < inputs; ++i)
        net.addSynapse(i, {inputs, 12.0f, 1, 0});
    net.finalize();

    StdpConfig config;
    config.aPlus = 0.03;
    config.aMinus = 0.010;
    config.tauPlus = 20.0;
    config.tauMinus = 20.0;
    config.wMin = 1.0f;
    config.wMax = 25.0f;
    StdpEngine engine(net, config);

    // The readout neuron runs on folded Flexon.
    const FlexonConfig hw = FlexonConfig::fromParams(lif);
    FoldedFlexonNeuron readout(hw);

    Rng rng(2026);
    std::vector<uint8_t> fired(inputs + 1, 0);
    double routed = 0.0; // one-step-delayed input to the readout
    uint64_t readout_spikes = 0;

    auto report = [&](const char *phase) {
        double pattern_w = 0.0, noise_w = 0.0;
        for (uint32_t i = 0; i < inputs; ++i) {
            const float w = net.outgoing(i)[0].weight;
            (i < pattern_size ? pattern_w : noise_w) += w;
        }
        std::printf("%-9s mean weight: pattern %.2f, noise %.2f "
                    "(ratio %.2f); readout spikes so far: %llu\n",
                    phase, pattern_w / pattern_size,
                    noise_w / (inputs - pattern_size),
                    (pattern_w / pattern_size) /
                        (noise_w / (inputs - pattern_size)),
                    static_cast<unsigned long long>(readout_spikes));
    };

    std::printf("=== STDP on a Flexon-simulated readout: learn a "
                "10-input volley pattern ===\n\n");
    report("initial");

    for (int t = 0; t < 80000; ++t) {
        std::fill(fired.begin(), fired.end(), uint8_t{0});

        // Stimulus: the pattern volley at ~1/200 steps; independent
        // background noise on every input at the same mean rate.
        const bool volley = rng.bernoulli(0.005);
        for (uint32_t i = 0; i < inputs; ++i) {
            const bool in_pattern = i < pattern_size && volley;
            const bool noise = rng.bernoulli(0.005);
            fired[i] = in_pattern || noise;
        }

        // Readout neuron on folded Flexon, one-step synaptic delay.
        fired[inputs] =
            readout.step(hw.scaleWeight(routed));
        readout_spikes += fired[inputs];

        engine.onStep(fired);

        routed = 0.0;
        for (uint32_t i = 0; i < inputs; ++i)
            if (fired[i])
                routed += net.outgoing(i)[0].weight;

        if (t == 20000)
            report("t=20k");
        if (t == 50000)
            report("t=50k");
    }
    report("final");

    std::printf("\nExpected: the pattern synapses saturate toward "
                "w_max while the noise synapses\nlag well behind — "
                "the readout becomes a detector for the volley, with "
                "the\nneuron dynamics computed by the Flexon model "
                "throughout.\n");
    return 0;
}
