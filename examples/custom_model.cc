/**
 * @file
 * Supporting custom neuron models (Section VII-A).
 *
 * The paper's answer to "my model is not in Table III" is feature
 * composition plus control-signal tricks. This example builds two
 * custom neurons:
 *
 *  1. a quadratic neuron with relative refractory (QIF + RR), a
 *     combination no Table III row uses;
 *  2. a neuron with *background current* — the paper's own Section
 *     VII-A workaround: dedicate one synapse type to a constant
 *     input I_bg so the neuron depolarizes even with no spikes.
 */

#include <cstdio>

#include "backend/codegen.hh"
#include "folded/neuron.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

int
main()
{
    // --- 1. QIF + relative refractory: compose features directly.
    NeuronParams qif_rr = defaultParams(ModelKind::QIF);
    qif_rr.features =
        FeatureSet{Feature::EXD, Feature::COBE, Feature::REV,
                   Feature::QDI, Feature::AR, Feature::RR};
    qif_rr.epsR = 0.05;
    qif_rr.vRR = -0.5;
    qif_rr.qR = -0.2;
    qif_rr.vAR = -0.7;
    qif_rr.epsW = 0.005;
    qif_rr.b = -0.1;

    const CompiledNeuron custom = compile(qif_rr);
    std::printf("=== Custom model 1: QIF with relative refractory "
                "===\n\n%s\n",
                describe(custom).c_str());

    // Demonstrate the RR effect: same drive, with and without RR.
    auto count_spikes = [](const CompiledNeuron &c, double drive) {
        FoldedFlexonNeuron n(c.config, c.program);
        const Fix in = c.config.scaleWeight(drive);
        int spikes = 0;
        for (int t = 0; t < 20000; ++t)
            spikes += n.step(in);
        return spikes;
    };
    const int with_rr = count_spikes(custom, 0.08);
    const int without_rr =
        count_spikes(compileModel(ModelKind::QIF), 0.08);
    std::printf("Constant drive 0.08 for 2 s: %d spikes with RR vs "
                "%d without — the relative\nrefractory conductance "
                "suppresses the rate.\n\n",
                with_rr, without_rr);

    // --- 2. Background current via a dedicated synapse type
    // (Section VII-A): type 1 carries a constant I_bg each step.
    NeuronParams bg = defaultParams(ModelKind::DSRM0);
    bg.numSynapseTypes = 2;
    bg.syn[1].epsG = 1.0; // g = I each step: a pure pass-through
    const CompiledNeuron bg_neuron = compile(bg);

    FoldedFlexonNeuron hw(bg_neuron.config, bg_neuron.program);
    ReferenceNeuron ref(bg);
    const double i_bg = 1.5;
    int hw_spikes = 0, ref_spikes = 0;
    for (int t = 0; t < 20000; ++t) {
        // No presynaptic spikes at all: only the background current.
        const double raw[2] = {0.0, i_bg};
        const Fix scaled[2] = {Fix::zero(),
                               bg_neuron.config.scaleWeight(i_bg)};
        ref_spikes += ref.step(std::span<const double>(raw, 2));
        hw_spikes += hw.step(std::span<const Fix>(scaled, 2));
    }
    std::printf("=== Custom model 2: background current (Section "
                "VII-A) ===\n\n");
    std::printf("No input spikes, I_bg = %.2f on a dedicated synapse "
                "type: %d spikes on folded\nFlexon vs %d on the "
                "reference — the neuron fires from the background "
                "current\nalone, as the paper's workaround "
                "describes.\n",
                i_bg, hw_spikes, ref_spikes);
    return 0;
}
