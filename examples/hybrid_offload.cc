/**
 * @file
 * Hybrid offload (Section VII-A): an SNN mixing a Flexon-supported
 * model (AdEx) with a custom model Flexon cannot express
 * (Hodgkin-Huxley, which needs division and exponentials beyond the
 * datapath). The paper's answer: offload the supported populations
 * to Flexon and keep the unsupported ones on the general-purpose
 * processor.
 *
 * This example builds a 400-neuron AdEx network feeding 40 HH
 * neurons, runs the AdEx side on the spatially folded Flexon array
 * (modelled time) and the HH side on the host, and compares the
 * neuron-computation cost against the all-software run.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "folded/array.hh"
#include "models/hh.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main()
{
    constexpr size_t adex_count = 400;
    constexpr size_t hh_count = 40;
    constexpr int steps = 2000; // 200 ms of biological time

    const NeuronParams adex_params = defaultParams(ModelKind::AdEx);
    const FlexonConfig adex_config =
        FlexonConfig::fromParams(adex_params);

    // Sparse random feed-forward coupling: each AdEx spike adds to a
    // decaying synaptic current (tau ~ 0.6 ms) in 4 random HH
    // neurons, so coincident spikes summate the way biological
    // synaptic currents do.
    Rng rng(12);
    std::vector<std::vector<uint32_t>> fanout(adex_count);
    for (auto &targets : fanout)
        for (int k = 0; k < 4; ++k)
            targets.push_back(
                static_cast<uint32_t>(rng.uniformInt(hh_count)));

    // --- Run 1: everything in software.
    std::printf("=== Section VII-A hybrid offload: AdEx (%zu) + HH "
                "(%zu), %d steps ===\n\n",
                adex_count, hh_count, steps);

    double sw_adex_sec = 0.0, sw_hh_sec = 0.0;
    uint64_t sw_adex_spikes = 0, sw_hh_spikes = 0;
    {
        Rng drive_rng(77);
        std::vector<ReferenceNeuron> adex(adex_count,
                                          ReferenceNeuron(adex_params));
        std::vector<HHNeuron> hh(hh_count);
        std::vector<double> hh_current(hh_count, 0.0);

        for (int t = 0; t < steps; ++t) {
            std::vector<double> next_current(hh_count, 0.0);
            auto t0 = Clock::now();
            for (size_t i = 0; i < adex_count; ++i) {
                const double in =
                    drive_rng.bernoulli(0.15)
                        ? drive_rng.uniform(0.3, 0.8)
                        : 0.0;
                if (adex[i].step(in)) {
                    ++sw_adex_spikes;
                    for (uint32_t tgt : fanout[i])
                        next_current[tgt] += 8.0; // uA/cm^2 kick
                }
            }
            sw_adex_sec += secondsSince(t0);

            t0 = Clock::now();
            for (size_t i = 0; i < hh_count; ++i)
                sw_hh_spikes += hh[i].step(hh_current[i]);
            sw_hh_sec += secondsSince(t0);
            for (size_t i = 0; i < hh_count; ++i)
                hh_current[i] = 0.85 * hh_current[i] + next_current[i];
        }
    }
    std::printf("all-software : AdEx %.1f ms, HH %.1f ms "
                "(AdEx %llu spikes, HH %llu spikes)\n",
                sw_adex_sec * 1e3, sw_hh_sec * 1e3,
                static_cast<unsigned long long>(sw_adex_spikes),
                static_cast<unsigned long long>(sw_hh_spikes));

    // --- Run 2: AdEx offloaded to the folded Flexon array.
    double hw_hh_sec = 0.0;
    uint64_t hw_adex_spikes = 0, hw_hh_spikes = 0;
    FoldedFlexonArray array;
    array.addPopulation(adex_config, adex_count);
    {
        Rng drive_rng(77);
        std::vector<HHNeuron> hh(hh_count);
        std::vector<double> hh_current(hh_count, 0.0);
        std::vector<Fix> input(adex_count * maxSynapseTypes,
                               Fix::zero());
        std::vector<uint8_t> fired;

        for (int t = 0; t < steps; ++t) {
            for (size_t i = 0; i < adex_count; ++i) {
                const double in =
                    drive_rng.bernoulli(0.15)
                        ? drive_rng.uniform(0.3, 0.8)
                        : 0.0;
                input[i * maxSynapseTypes] =
                    adex_config.scaleWeight(in);
            }
            array.step(input, fired);

            std::vector<double> next_current(hh_count, 0.0);
            for (size_t i = 0; i < adex_count; ++i) {
                if (fired[i]) {
                    ++hw_adex_spikes;
                    for (uint32_t tgt : fanout[i])
                        next_current[tgt] += 8.0;
                }
            }
            auto t0 = Clock::now();
            for (size_t i = 0; i < hh_count; ++i)
                hw_hh_spikes += hh[i].step(hh_current[i]);
            hw_hh_sec += secondsSince(t0);
            for (size_t i = 0; i < hh_count; ++i)
                hh_current[i] = 0.85 * hh_current[i] + next_current[i];
        }
    }
    const double hw_adex_sec = array.seconds();
    std::printf("hybrid       : AdEx %.3f ms on folded Flexon "
                "(modelled), HH %.1f ms on host\n               "
                "(AdEx %llu spikes, HH %llu spikes)\n\n",
                hw_adex_sec * 1e3, hw_hh_sec * 1e3,
                static_cast<unsigned long long>(hw_adex_spikes),
                static_cast<unsigned long long>(hw_hh_spikes));

    const double sw_total = sw_adex_sec + sw_hh_sec;
    const double hw_total = hw_adex_sec + hw_hh_sec;
    std::printf("Neuron-computation total: %.1f ms -> %.1f ms "
                "(%.2fx). The AdEx share drops\nfrom %.0f%% to "
                "%.1f%%; the residual cost is the unsupported HH "
                "population, as\nSection VII-A anticipates.\n",
                sw_total * 1e3, hw_total * 1e3, sw_total / hw_total,
                100.0 * sw_adex_sec / sw_total,
                100.0 * hw_adex_sec / hw_total);
    return 0;
}
