/**
 * @file
 * Membrane-trace gallery: probe a network simulation and render the
 * traces — the workflow a neuroscientist uses to eyeball model
 * behaviour before scaling up.
 *
 * One neuron of each of four Table III models receives the same
 * Poisson input train; the simulator's probe API records every
 * membrane sample and the analysis library plots them.
 */

#include <cstdio>

#include "analysis/trace_plot.hh"
#include "features/model_table.hh"
#include "snn/simulator.hh"

using namespace flexon;

int
main()
{
    // Four single-neuron populations, no recurrent wiring: the same
    // stimulus source drives all of them identically.
    Network net;
    const ModelKind kinds[] = {ModelKind::DLIF, ModelKind::QIF,
                               ModelKind::EIF,
                               ModelKind::IFCondExpGsfaGrr};
    for (ModelKind kind : kinds)
        net.addPopulation(modelName(kind), defaultParams(kind), 1);
    net.finalize();

    StimulusGenerator stim(11);
    // One shared Poisson source per neuron with identical statistics
    // (same seed stream order each run).
    for (uint32_t n = 0; n < 4; ++n)
        stim.addSource(StimulusSource::poisson(n, 1, 0.04, 0.5f, 0));

    SimulatorOptions opts;
    opts.backend = BackendKind::Folded; // probe the hardware model
    opts.probes = {0, 1, 2, 3};
    opts.recordSpikes = true;
    Simulator sim(net, stim, opts);
    sim.run(3000);

    TracePlotOptions plot;
    plot.rows = 9;

    std::printf("=== Membrane traces from the folded-Flexon backend "
                "(300 ms) ===\n\n");
    for (size_t i = 0; i < 4; ++i) {
        std::vector<size_t> spikes;
        for (const SpikeEvent &e : sim.spikeEvents())
            if (e.neuron == i)
                spikes.push_back(static_cast<size_t>(e.step));
        std::printf("--- %s (%llu spikes) ---\n",
                    modelName(kinds[i]),
                    static_cast<unsigned long long>(spikes.size()));
        std::printf("%s\n",
                    renderTrace(sim.probeTrace(i), spikes, plot)
                        .c_str());
    }

    std::printf("Same input train, four different feature "
                "combinations: the conductance LIF\nintegrates "
                "smoothly; QIF/EIF show the slow initiation upswing "
                "past theta = 1;\nthe gsfa_grr neuron's rate is "
                "visibly suppressed after each spike by its\n"
                "refractory conductances.\n");
    return 0;
}
