/**
 * @file
 * Izhikevich neuron behaviours on Flexon.
 *
 * Izhikevich's model is prized for reproducing many cortical firing
 * patterns with four parameters; the paper highlights that Flexon
 * fully supports it (Section VIII). This example programs one Flexon
 * neuron with three classic parameterizations — tonic spiking,
 * spike-frequency adaptation, and a fast-spiking-like variant — and
 * prints ASCII spike rasters under a constant conductance drive.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "features/model_table.hh"
#include "flexon/neuron.hh"

using namespace flexon;

namespace {

/** Run a neuron under constant drive; render 100-step raster bins. */
void
raster(const char *name, const NeuronParams &params, double drive,
       int steps)
{
    const FlexonConfig config = FlexonConfig::fromParams(params);
    FlexonNeuron neuron(config);
    const Fix in = config.scaleWeight(drive);

    std::vector<int> spikes;
    for (int t = 0; t < steps; ++t) {
        if (neuron.step(in))
            spikes.push_back(t);
    }

    std::string line;
    const int bin = steps / 72;
    for (int b = 0; b < 72; ++b) {
        int count = 0;
        for (int t : spikes)
            count += (t >= b * bin && t < (b + 1) * bin);
        line += count == 0 ? '.' : (count == 1 ? '|' : '#');
    }
    std::printf("%-22s %s  (%zu spikes", name, line.c_str(),
                spikes.size());
    if (spikes.size() >= 2) {
        std::printf(", first ISI %d, last ISI %d",
                    spikes[1] - spikes[0],
                    spikes.back() - spikes[spikes.size() - 2]);
    }
    std::printf(")\n");
}

} // namespace

int
main()
{
    std::printf("=== Izhikevich behaviours on Flexon "
                "(EXD+COBE+REV+QDI+ADT+AR) ===\n\n");
    std::printf("72 bins of %d steps each; '.' none, '|' one, '#' "
                "several spikes per bin.\n\n",
                12000 / 72);

    // Tonic spiking: weak adaptation.
    NeuronParams tonic = defaultParams(ModelKind::Izhikevich);
    tonic.epsW = 0.01;
    tonic.b = 0.02;
    raster("tonic spiking", tonic, 0.06, 12000);

    // Spike-frequency adaptation: strong, slow adaptation current.
    NeuronParams adapting = defaultParams(ModelKind::Izhikevich);
    adapting.epsW = 0.0008;
    adapting.b = 0.15;
    raster("adapting", adapting, 0.06, 12000);

    // Fast-spiking-like: fast recovery, minimal adaptation, short
    // refractory.
    NeuronParams fast = defaultParams(ModelKind::Izhikevich);
    fast.epsW = 0.05;
    fast.b = 0.01;
    fast.arSteps = 5;
    raster("fast spiking", fast, 0.10, 12000);

    // Phasic-like: adaptation so strong the neuron fires a burst at
    // onset and then falls nearly silent.
    NeuronParams phasic = defaultParams(ModelKind::Izhikevich);
    phasic.epsW = 0.0001;
    phasic.b = 1.0;
    raster("phasic (onset spike)", phasic, 0.06, 12000);

    std::printf("\nExpected: tonic = even spacing; adapting = "
                "widening intervals; fast = dense\nraster; phasic = "
                "early spikes only.\n");
    return 0;
}
