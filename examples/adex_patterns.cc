/**
 * @file
 * AdEx firing patterns on spatially folded Flexon.
 *
 * AdEx is the most feature-hungry Table III model (7 of the 12
 * biologically common features). This example compiles it, prints
 * its control-signal program, and demonstrates how the
 * spike-triggered-current parameters shape the response: regular
 * firing, adaptation, and subthreshold-oscillation-damped onset.
 * It also shows the membrane trace of the first 30 ms.
 */

#include <cstdio>
#include <vector>

#include "backend/codegen.hh"
#include "folded/neuron.hh"

using namespace flexon;

namespace {

void
run(const char *name, const NeuronParams &params, double drive)
{
    const CompiledNeuron compiled = compile(params);
    FoldedFlexonNeuron neuron(compiled.config, compiled.program);
    const Fix in = compiled.config.scaleWeight(drive);

    std::vector<int> spikes;
    const int steps = 15000;
    for (int t = 0; t < steps; ++t) {
        if (neuron.step(in))
            spikes.push_back(t);
    }

    std::printf("%-24s %3zu spikes / %d steps", name, spikes.size(),
                steps);
    if (spikes.size() >= 3) {
        std::printf("  ISIs: %d -> %d -> ... -> %d",
                    spikes[1] - spikes[0], spikes[2] - spikes[1],
                    spikes.back() - spikes[spikes.size() - 2]);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const CompiledNeuron adex = compileModel(ModelKind::AdEx);
    std::printf("=== AdEx on spatially folded Flexon ===\n\n");
    std::printf("%s\n", describe(adex).c_str());

    // Membrane trace under constant drive (first 300 steps).
    FoldedFlexonNeuron tracer(adex.config, adex.program);
    const Fix drive = adex.config.scaleWeight(0.5);
    std::printf("membrane potential, one sample per 10 steps "
                "(normalized units):\n  ");
    for (int t = 0; t < 300; ++t) {
        tracer.step(drive);
        if (t % 10 == 9)
            std::printf("%.2f ", tracer.state().v.toDouble());
    }
    std::printf("\n\n=== Parameter sweeps ===\n\n");

    NeuronParams regular = defaultParams(ModelKind::AdEx);
    regular.b = 0.01;
    regular.epsW = 0.01;
    run("regular firing", regular, 0.5);

    NeuronParams adapting = defaultParams(ModelKind::AdEx);
    adapting.b = 0.2;
    adapting.epsW = 0.0005;
    run("strong adaptation", adapting, 0.5);

    NeuronParams oscillating = defaultParams(ModelKind::AdEx);
    oscillating.a = -0.05; // strong subthreshold coupling
    oscillating.b = 0.05;
    run("oscillation-damped", oscillating, 0.5);

    std::printf("\nExpected: adaptation stretches the inter-spike "
                "intervals over time; the\nstrong negative coupling "
                "(SBT) suppresses the rate further.\n");
    return 0;
}
