/**
 * @file
 * Tests for the model registry: builtin seeding matches the legacy
 * ModelKind tables bit for bit, model-file registration (valid and
 * every rejection class), registry-built networks are bit-identical
 * to enum-built ones across thread counts, intrinsic-excitability
 * restart equivalence with STDP active, and the generic-kernel
 * fallback telemetry counter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/telemetry.hh"
#include "features/model_table.hh"
#include "nets/model_demo.hh"
#include "registry/model_file.hh"
#include "registry/registry.hh"
#include "snn/plasticity.hh"
#include "snn/simulator.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

void
expectSameParams(const NeuronParams &a, const NeuronParams &b)
{
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.numSynapseTypes, b.numSynapseTypes);
    for (size_t i = 0; i < a.numSynapseTypes; ++i) {
        EXPECT_EQ(a.syn[i].epsG, b.syn[i].epsG);
        EXPECT_EQ(a.syn[i].vG, b.syn[i].vG);
    }
    EXPECT_EQ(a.epsM, b.epsM);
    EXPECT_EQ(a.vLeak, b.vLeak);
    EXPECT_EQ(a.deltaT, b.deltaT);
    EXPECT_EQ(a.vCrit, b.vCrit);
    EXPECT_EQ(a.vFiring, b.vFiring);
    EXPECT_EQ(a.epsW, b.epsW);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.vW, b.vW);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.arSteps, b.arSteps);
    EXPECT_EQ(a.epsR, b.epsR);
    EXPECT_EQ(a.vRR, b.vRR);
    EXPECT_EQ(a.vAR, b.vAR);
    EXPECT_EQ(a.qR, b.qR);
}

std::string
writeTempFile(const char *name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path);
    os << text;
    return path;
}

TEST(Registry, SeedsEveryBuiltinModel)
{
    ModelRegistry &reg = ModelRegistry::instance();
    EXPECT_GE(reg.size(), allModels().size());
    for (const ModelKind kind : allModels()) {
        SCOPED_TRACE(modelName(kind));
        const ModelDescriptor *desc = reg.find(modelName(kind));
        ASSERT_NE(desc, nullptr);
        EXPECT_TRUE(desc->builtin());
        EXPECT_EQ(desc->kind, kind);
        EXPECT_EQ(desc->features(), modelFeatures(kind));
        expectSameParams(desc->params, defaultParams(kind));
        // Every Table III mask has a compiled kernel specialization
        // and a non-empty folded microcode program.
        EXPECT_TRUE(desc->kernel.specialized);
        EXPECT_GT(desc->microcodeOps, 0u);
        EXPECT_EQ(desc->microcodeLatency, desc->microcodeOps + 1);
        EXPECT_FALSE(desc->ie.enabled);
    }
    EXPECT_EQ(reg.find("NoSuchModel"), nullptr);
}

TEST(Registry, FingerprintAndSummaryAreStable)
{
    ModelRegistry &reg = ModelRegistry::instance();
    EXPECT_EQ(reg.fingerprint(), reg.fingerprint());
    const std::string names = reg.namesSummary();
    for (const ModelKind kind : allModels())
        EXPECT_NE(names.find(modelName(kind)), std::string::npos)
            << names;
}

TEST(Registry, RejectsInvalidDescriptors)
{
    ModelRegistry &reg = ModelRegistry::instance();
    std::string err;

    ModelDescriptor badName;
    badName.name = "white space";
    badName.params = defaultParams(ModelKind::LIF);
    EXPECT_FALSE(reg.registerModel(badName, &err));
    EXPECT_NE(err.find("name"), std::string::npos) << err;

    ModelDescriptor dup;
    dup.name = "LIF";
    dup.params = defaultParams(ModelKind::LIF);
    EXPECT_FALSE(reg.registerModel(dup, &err));
    EXPECT_NE(err.find("already registered"), std::string::npos)
        << err;

    // No membrane decay: NeuronParams::validate() tolerates it (the
    // kernel-equivalence suite uses such sets) but a *registered*
    // model must be simulatable on the fixed-point paths, which
    // require EXD or LID.
    ModelDescriptor noDecay;
    noDecay.name = "registry_test_no_decay";
    noDecay.params = defaultParams(ModelKind::LIF);
    noDecay.params.features = {Feature::CUB};
    EXPECT_FALSE(reg.registerModel(noDecay, &err));
    EXPECT_NE(err.find("membrane decay"), std::string::npos) << err;

    ModelDescriptor badIe;
    badIe.name = "registry_test_bad_ie";
    badIe.params = defaultParams(ModelKind::LIF);
    badIe.ie.enabled = true;
    badIe.ie.eta = -1.0;
    EXPECT_FALSE(reg.registerModel(badIe, &err));
    EXPECT_NE(err.find("eta"), std::string::npos) << err;
}

/**
 * The tentpole equivalence: a network built from the registry
 * descriptor must be bit-identical — spike event for spike event —
 * to one built from the legacy enum tables, for every builtin model
 * and across thread counts.
 */
class RegistryEquivalence : public testing::TestWithParam<size_t>
{
};

TEST_P(RegistryEquivalence, MatchesEnumPathBitForBit)
{
    const size_t threads = GetParam();
    for (const ModelKind kind : allModels()) {
        SCOPED_TRACE(modelName(kind));
        const ModelDescriptor *desc =
            ModelRegistry::instance().find(modelName(kind));
        ASSERT_NE(desc, nullptr);

        // Same structure, one parameterized through the registry and
        // one through defaultParams(ModelKind).
        ModelDescriptor enumPath = *desc;
        enumPath.params = defaultParams(kind);

        BenchmarkInstance a = buildModelDemo(*desc, 100, 7);
        BenchmarkInstance b = buildModelDemo(enumPath, 100, 7);

        SimulatorOptions opts;
        opts.threads = threads;
        opts.recordSpikes = true;
        Simulator simA(a.network, a.stimulus, opts);
        Simulator simB(b.network, b.stimulus, opts);
        simA.run(150);
        simB.run(150);

        EXPECT_EQ(simA.spikeCounts(), simB.spikeCounts());
        ASSERT_EQ(simA.spikeEvents().size(),
                  simB.spikeEvents().size());
        for (size_t i = 0; i < simA.spikeEvents().size(); ++i) {
            EXPECT_EQ(simA.spikeEvents()[i].step,
                      simB.spikeEvents()[i].step);
            EXPECT_EQ(simA.spikeEvents()[i].neuron,
                      simB.spikeEvents()[i].neuron);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, RegistryEquivalence,
                         testing::Values(1, 3, 4));

TEST(ModelFile, RegistersOutOfTableModel)
{
    const std::string path = writeTempFile(
        "registry_valid.json",
        "{\n"
        "  \"schema\": \"flexon-models-v1\",\n"
        "  \"models\": {\n"
        "    \"registry_test_LIFL_IE\": {\n"
        "      \"doc\": \"LIF-with-latency plus IE\",\n"
        "      \"features\": \"LID+CUB+AR\",\n"
        "      \"params\": {\n"
        "        \"num_synapse_types\": 2,\n"
        "        \"eps_m\": 0.0,\n"
        "        \"v_leak\": 0.002,\n"
        "        \"ar_steps\": 20,\n"
        "        \"syn0\": {\"eps_g\": 0.02, \"v_g\": 3.0},\n"
        "        \"syn1\": {\"eps_g\": 0.02, \"v_g\": -1.0}\n"
        "      },\n"
        "      \"ie\": {\"eta\": 0.002, \"target_rate\": 0.02,\n"
        "              \"tau\": 200.0, \"min_offset\": -0.5,\n"
        "              \"max_offset\": 0.5}\n"
        "    }\n"
        "  }\n"
        "}\n");
    std::string err;
    ModelRegistry &reg = ModelRegistry::instance();
    ASSERT_EQ(loadModelFile(reg, path, &err), 1) << err;

    const ModelDescriptor *desc = reg.find("registry_test_LIFL_IE");
    ASSERT_NE(desc, nullptr);
    EXPECT_FALSE(desc->builtin());
    EXPECT_EQ(desc->source, path);
    EXPECT_EQ(desc->features().toString(), "LID+CUB+AR");
    EXPECT_EQ(desc->params.vLeak, 0.002);
    EXPECT_EQ(desc->params.arSteps, 20u);
    ASSERT_TRUE(desc->ie.enabled);
    EXPECT_EQ(desc->ie.eta, 0.002);
    EXPECT_EQ(desc->ie.targetRate, 0.02);

    // Loading the same file again collides on the name.
    EXPECT_EQ(loadModelFile(reg, path, &err), -1);
    EXPECT_NE(err.find("already registered"), std::string::npos)
        << err;
}

TEST(ModelFile, RejectsMalformedInput)
{
    ModelRegistry &reg = ModelRegistry::instance();
    std::string err;

    EXPECT_EQ(loadModelFile(reg, testing::TempDir() + "missing.json",
                            &err),
              -1);
    EXPECT_NE(err.find("cannot"), std::string::npos) << err;

    const struct
    {
        const char *name;
        const char *text;
        const char *expect;
    } cases[] = {
        {"registry_bad_schema.json", "{\"schema\": \"bogus\"}",
         "schema"},
        {"registry_no_schema.json", "{\"models\": {}}", "schema"},
        {"registry_bad_json.json", "{\"schema\": ", "offset"},
        {"registry_bad_feature.json",
         "{\"schema\": \"flexon-models-v1\", \"models\": {"
         "\"registry_test_badfeat\": {\"features\": \"LID+WAT\","
         "\"params\": {}}}}",
         "WAT"},
        {"registry_bad_key.json",
         "{\"schema\": \"flexon-models-v1\", \"models\": {"
         "\"registry_test_badkey\": {\"features\": \"LID+CUB\","
         "\"params\": {\"not_a_param\": 1.0}}}}",
         "not_a_param"},
        {"registry_bad_ie.json",
         "{\"schema\": \"flexon-models-v1\", \"models\": {"
         "\"registry_test_badie\": {\"features\": \"LID+CUB\","
         "\"params\": {}, \"ie\": {\"eta\": -0.5}}}}",
         "eta"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        const std::string path = writeTempFile(c.name, c.text);
        err.clear();
        EXPECT_EQ(loadModelFile(reg, path, &err), -1);
        EXPECT_NE(err.find(c.expect), std::string::npos) << err;
    }
}

/** A small IE-enabled network over the discrete reference backend. */
struct IeFixture
{
    ModelDescriptor desc;
    BenchmarkInstance inst;

    explicit IeFixture(uint64_t seed)
        : desc(makeDesc()),
          inst(buildModelDemo(desc, 80, seed))
    {
    }

    static ModelDescriptor makeDesc()
    {
        ModelDescriptor d;
        d.name = "ie_equiv";
        d.params = defaultParams(ModelKind::LLIF);
        d.ie.enabled = true;
        d.ie.eta = 0.005;
        d.ie.targetRate = 0.02;
        d.ie.tau = 50.0;
        return d;
    }
};

std::vector<std::pair<uint64_t, uint32_t>>
events(const Simulator &sim)
{
    std::vector<std::pair<uint64_t, uint32_t>> out;
    for (const SpikeEvent &e : sim.spikeEvents())
        out.emplace_back(e.step, e.neuron);
    return out;
}

/**
 * run(N) must equal run(k) -> save -> restore -> run(N-k) with BOTH
 * rules active: STDP mutating weights and IE mutating per-neuron
 * thresholds. This exercises the v4 plasticity checkpoint block and
 * the IE rule's re-application of offsets after restore.
 */
TEST(IntrinsicExcitability, RestartEquivalenceWithStdp)
{
    const uint64_t total = 240, split = 110;
    SimulatorOptions opts;
    opts.recordSpikes = true;

    StdpConfig stdpCfg;
    stdpCfg.plasticType = 0;

    IeFixture a(11);
    Simulator full(a.inst.network, a.inst.stimulus, opts);
    StdpEngine fullStdp(a.inst.network, stdpCfg);
    IntrinsicExcitabilityRule fullIe(
        full.backend(), a.inst.network.numNeurons(), a.desc.ie);
    full.attachPlasticityRule(&fullStdp);
    full.attachPlasticityRule(&fullIe);
    full.run(total);
    ASSERT_GT(full.stats().spikes, 0u) << "network stayed silent";
    EXPECT_NE(fullIe.meanOffset(), 0.0)
        << "IE never moved a threshold; the test is vacuous";
    EXPECT_GT(full.backend().parameterMutations(), 0u);

    IeFixture b(11);
    std::stringstream snapshot;
    {
        Simulator first(b.inst.network, b.inst.stimulus, opts);
        StdpEngine firstStdp(b.inst.network, stdpCfg);
        IntrinsicExcitabilityRule firstIe(
            first.backend(), b.inst.network.numNeurons(), b.desc.ie);
        first.attachPlasticityRule(&firstStdp);
        first.attachPlasticityRule(&firstIe);
        first.run(split);
        first.saveCheckpoint(snapshot);
    }

    Simulator second(b.inst.network, b.inst.stimulus, opts);
    StdpEngine secondStdp(b.inst.network, stdpCfg);
    IntrinsicExcitabilityRule secondIe(
        second.backend(), b.inst.network.numNeurons(), b.desc.ie);
    second.attachPlasticityRule(&secondStdp);
    second.attachPlasticityRule(&secondIe);
    second.loadCheckpoint(snapshot, &b.inst.network);
    EXPECT_EQ(second.restoredStep(), split);
    second.run(total - split);

    EXPECT_EQ(events(full), events(second));
    EXPECT_EQ(full.spikeCounts(), second.spikeCounts());
    for (size_t n = 0; n < b.inst.network.numNeurons(); ++n) {
        EXPECT_EQ(fullIe.offset(n), secondIe.offset(n)) << n;
        EXPECT_EQ(fullIe.rate(n), secondIe.rate(n)) << n;
    }
}

/** Restoring with mismatched rules must die, not silently diverge. */
TEST(IntrinsicExcitability, RestoreRequiresMatchingRules)
{
    SimulatorOptions opts;

    IeFixture a(13);
    std::stringstream snapshot;
    Simulator first(a.inst.network, a.inst.stimulus, opts);
    IntrinsicExcitabilityRule ie(
        first.backend(), a.inst.network.numNeurons(), a.desc.ie);
    first.attachPlasticityRule(&ie);
    first.run(40);
    first.saveCheckpoint(snapshot);

    IeFixture b(13);
    Simulator second(b.inst.network, b.inst.stimulus, opts);
    EXPECT_DEATH(second.loadCheckpoint(snapshot, &b.inst.network),
                 "plasticity rules");
}

TEST(IntrinsicExcitability, RequiresThresholdCapableBackend)
{
    IeFixture a(17);
    SimulatorOptions opts;
    opts.backend = BackendKind::Flexon; // fixed-point: no offsets
    Simulator sim(a.inst.network, a.inst.stimulus, opts);
    EXPECT_DEATH(IntrinsicExcitabilityRule(
                     sim.backend(), a.inst.network.numNeurons(),
                     a.desc.ie),
                 "threshold");
}

/**
 * Feature masks outside the dispatch table run on the generic kernel
 * and bump kernel_fallback_steps; Table III masks must not.
 */
TEST(Registry, FallbackCounterTracksGenericKernelSteps)
{
    telemetry::Counter &fallback =
        telemetry::Registry::global().counter(
            "kernel_fallback_steps",
            "neuron steps taken by the generic fallback kernel");

    // LID+CUB+RR is valid but deliberately not specialized.
    ModelDescriptor odd;
    odd.name = "registry_test_fallback";
    odd.params = defaultParams(ModelKind::LLIF);
    odd.params.features = {Feature::LID, Feature::CUB, Feature::RR};
    odd.params.epsR = 0.05;
    odd.params.vRR = -0.5;
    odd.params.qR = -0.2;
    std::string err;
    ASSERT_TRUE(
        ModelRegistry::instance().registerModel(odd, &err))
        << err;
    const ModelDescriptor *desc =
        ModelRegistry::instance().find("registry_test_fallback");
    ASSERT_NE(desc, nullptr);
    EXPECT_FALSE(desc->kernel.specialized);

    SimulatorOptions opts;
    opts.backend = BackendKind::Flexon;

    BenchmarkInstance inst = buildModelDemo(*desc, 50, 3);
    const uint64_t before = fallback.value();
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(20);
    EXPECT_EQ(fallback.value() - before, 20u * 50u);

    // A specialized mask must leave the counter untouched.
    const ModelDescriptor *llif =
        ModelRegistry::instance().find("LLIF");
    ASSERT_NE(llif, nullptr);
    BenchmarkInstance fast = buildModelDemo(*llif, 50, 3);
    const uint64_t mid = fallback.value();
    Simulator simFast(fast.network, fast.stimulus, opts);
    simFast.run(20);
    EXPECT_EQ(fallback.value(), mid);
}

} // namespace
} // namespace flexon
