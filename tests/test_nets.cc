/**
 * @file
 * Tests for the Table I benchmark generators: the published
 * structure (neuron counts, synapse counts, model, solver) must be
 * reproduced at scale, and the scaled instances must show sustained,
 * non-saturating activity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(Table1, TenBenchmarksWithPaperStructure)
{
    const auto &specs = table1Benchmarks();
    ASSERT_EQ(specs.size(), 10u);

    // Spot-check the published rows.
    const BenchmarkSpec &brunel = findBenchmark("Brunel");
    EXPECT_EQ(brunel.neurons, 5000u);
    EXPECT_EQ(brunel.synapses, 2500000u);
    EXPECT_EQ(brunel.model, ModelKind::IFPscAlpha);
    EXPECT_EQ(brunel.solver, SolverKind::Euler);

    const BenchmarkSpec &izh = findBenchmark("Izhikevich");
    EXPECT_EQ(izh.neurons, 10000u);
    EXPECT_EQ(izh.synapses, 10000000u);
    EXPECT_EQ(izh.model, ModelKind::Izhikevich);
    EXPECT_TRUE(izh.gpuNative);

    const BenchmarkSpec &muller = findBenchmark("Muller");
    EXPECT_EQ(muller.neurons, 1728u);
    EXPECT_EQ(muller.model, ModelKind::IFCondExpGsfaGrr);
    EXPECT_EQ(muller.solver, SolverKind::RKF45);

    const BenchmarkSpec &potjans = findBenchmark("Potjans-Diesmann");
    EXPECT_EQ(potjans.model, ModelKind::DSRM0);

    const BenchmarkSpec &va = findBenchmark("Vogels-Abbott");
    EXPECT_EQ(va.neurons, 4000u);
    EXPECT_EQ(va.synapses, 320000u);
    EXPECT_EQ(va.model, ModelKind::DLIF);
}

TEST(Table1, ScaledInstancePreservesDensity)
{
    const BenchmarkSpec &spec = findBenchmark("Vogels-Abbott");
    BenchmarkInstance inst = buildBenchmark(spec, 10.0, 42);
    EXPECT_NEAR(inst.network.numNeurons(), 400.0, 1.0);
    // Density preserved: expected synapses ~ (N/10)^2 * p = 3200.
    const double expected =
        static_cast<double>(spec.synapses) / (10.0 * 10.0);
    EXPECT_NEAR(static_cast<double>(inst.network.numSynapses()),
                expected, 0.15 * expected);
}

TEST(Table1, EightyTwentySplit)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Brunel"), 10.0, 42);
    ASSERT_EQ(inst.network.numPopulations(), 2u);
    const double exc =
        static_cast<double>(inst.network.population(0).count);
    const double inh =
        static_cast<double>(inst.network.population(1).count);
    EXPECT_NEAR(exc / (exc + inh), 0.8, 0.01);
}

TEST(Table1, InstanceIsDeterministic)
{
    const BenchmarkSpec &spec = findBenchmark("Nowotny");
    BenchmarkInstance a = buildBenchmark(spec, 5.0, 7);
    BenchmarkInstance b = buildBenchmark(spec, 5.0, 7);
    EXPECT_EQ(a.network.numSynapses(), b.network.numSynapses());
}

/** Every benchmark must run with sustained, bounded activity. */
class Table1Activity
    : public ::testing::TestWithParam<size_t>
{
};

TEST_P(Table1Activity, SustainedBoundedFiring)
{
    const BenchmarkSpec &spec = table1Benchmarks()[GetParam()];
    // Aggressive scaling keeps the test fast.
    const double scale =
        std::max(1.0, static_cast<double>(spec.neurons) / 300.0);
    BenchmarkInstance inst = buildBenchmark(spec, scale, 99);

    Simulator sim(inst.network, inst.stimulus);
    sim.run(2000);

    const double rate = sim.meanRate(); // spikes/neuron/step
    EXPECT_GT(rate, 1e-4) << spec.name << ": network is silent";
    EXPECT_LT(rate, 0.2) << spec.name << ": network saturates";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Activity, ::testing::Range<size_t>(0, 10),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = table1Benchmarks()[info.param].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace flexon
