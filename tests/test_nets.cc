/**
 * @file
 * Tests for the Table I benchmark generators: the published
 * structure (neuron counts, synapse counts, model, solver) must be
 * reproduced at scale, and the scaled instances must show sustained,
 * non-saturating activity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "nets/potjans_diesmann.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(Table1, TenBenchmarksWithPaperStructure)
{
    const auto &specs = table1Benchmarks();
    ASSERT_EQ(specs.size(), 10u);

    // Spot-check the published rows.
    const BenchmarkSpec &brunel = findBenchmark("Brunel");
    EXPECT_EQ(brunel.neurons, 5000u);
    EXPECT_EQ(brunel.synapses, 2500000u);
    EXPECT_EQ(brunel.model, "IF_psc_alpha");
    EXPECT_EQ(brunel.solver, SolverKind::Euler);

    const BenchmarkSpec &izh = findBenchmark("Izhikevich");
    EXPECT_EQ(izh.neurons, 10000u);
    EXPECT_EQ(izh.synapses, 10000000u);
    EXPECT_EQ(izh.model, "Izhikevich");
    EXPECT_TRUE(izh.gpuNative);

    const BenchmarkSpec &muller = findBenchmark("Muller");
    EXPECT_EQ(muller.neurons, 1728u);
    EXPECT_EQ(muller.model, "IF_cond_exp_gsfa_grr");
    EXPECT_EQ(muller.solver, SolverKind::RKF45);

    const BenchmarkSpec &potjans = findBenchmark("Potjans-Diesmann");
    EXPECT_EQ(potjans.model, "DSRM0");

    const BenchmarkSpec &va = findBenchmark("Vogels-Abbott");
    EXPECT_EQ(va.neurons, 4000u);
    EXPECT_EQ(va.synapses, 320000u);
    EXPECT_EQ(va.model, "DLIF");
}

TEST(Table1, ScaledInstancePreservesDensity)
{
    const BenchmarkSpec &spec = findBenchmark("Vogels-Abbott");
    BenchmarkInstance inst = buildBenchmark(spec, 10.0, 42);
    EXPECT_NEAR(inst.network.numNeurons(), 400.0, 1.0);
    // Density preserved: expected synapses ~ (N/10)^2 * p = 3200.
    const double expected =
        static_cast<double>(spec.synapses) / (10.0 * 10.0);
    EXPECT_NEAR(static_cast<double>(inst.network.numSynapses()),
                expected, 0.15 * expected);
}

TEST(Table1, EightyTwentySplit)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Brunel"), 10.0, 42);
    ASSERT_EQ(inst.network.numPopulations(), 2u);
    const double exc =
        static_cast<double>(inst.network.population(0).count);
    const double inh =
        static_cast<double>(inst.network.population(1).count);
    EXPECT_NEAR(exc / (exc + inh), 0.8, 0.01);
}

TEST(Table1, InstanceIsDeterministic)
{
    const BenchmarkSpec &spec = findBenchmark("Nowotny");
    BenchmarkInstance a = buildBenchmark(spec, 5.0, 7);
    BenchmarkInstance b = buildBenchmark(spec, 5.0, 7);
    EXPECT_EQ(a.network.numSynapses(), b.network.numSynapses());
}

/** Every benchmark must run with sustained, bounded activity. */
class Table1Activity
    : public ::testing::TestWithParam<size_t>
{
};

TEST_P(Table1Activity, SustainedBoundedFiring)
{
    const BenchmarkSpec &spec = table1Benchmarks()[GetParam()];
    // Aggressive scaling keeps the test fast.
    const double scale =
        std::max(1.0, static_cast<double>(spec.neurons) / 300.0);
    BenchmarkInstance inst = buildBenchmark(spec, scale, 99);

    Simulator sim(inst.network, inst.stimulus);
    sim.run(2000);

    const double rate = sim.meanRate(); // spikes/neuron/step
    EXPECT_GT(rate, 1e-4) << spec.name << ": network is silent";
    EXPECT_LT(rate, 0.2) << spec.name << ": network saturates";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Activity, ::testing::Range<size_t>(0, 10),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = table1Benchmarks()[info.param].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---- Potjans–Diesmann microcircuit ------------------------------

TEST(Microcircuit, EightPopulationsWithPublishedSizes)
{
    const auto &sizes = microcircuitFullSizes();
    ASSERT_EQ(sizes.size(), microcircuitPopulations);
    EXPECT_EQ(sizes[0], 20683u); // L2/3E
    EXPECT_EQ(sizes[1], 5834u);  // L2/3I
    EXPECT_EQ(sizes[2], 21915u); // L4E
    EXPECT_EQ(sizes[3], 5479u);  // L4I
    EXPECT_EQ(sizes[4], 4850u);  // L5E
    EXPECT_EQ(sizes[5], 1065u);  // L5I
    EXPECT_EQ(sizes[6], 14395u); // L6E
    EXPECT_EQ(sizes[7], 2948u);  // L6I
    size_t total = 0;
    for (const size_t n : sizes)
        total += n;
    EXPECT_EQ(total, 77169u);

    MicrocircuitOptions opts;
    opts.scale = 40.0;
    MicrocircuitInstance inst = buildMicrocircuit(opts);
    ASSERT_EQ(inst.network.numPopulations(),
              microcircuitPopulations);
    for (size_t p = 0; p < microcircuitPopulations; ++p) {
        EXPECT_EQ(inst.network.population(p).name,
                  microcircuitPopulationNames()[p]);
        EXPECT_EQ(inst.network.population(p).count,
                  inst.popSizes[p]);
        EXPECT_NEAR(static_cast<double>(inst.popSizes[p]),
                    static_cast<double>(sizes[p]) / opts.scale, 1.0);
    }
}

TEST(Microcircuit, WiredInDegreesMatchTheMatrix)
{
    MicrocircuitOptions opts;
    opts.scale = 60.0;
    MicrocircuitInstance inst = buildMicrocircuit(opts);
    const Network &net = inst.network;

    // Count realized synapses per (target-pop, source-pop) pair.
    std::map<std::pair<size_t, size_t>, size_t> counts;
    for (uint32_t src = 0; src < net.numNeurons(); ++src) {
        const size_t sp = &net.populationOf(src) -
                          &net.population(0);
        for (const Synapse &syn : net.outgoing(src)) {
            const size_t tp = &net.populationOf(syn.target) -
                              &net.population(0);
            ++counts[{tp, sp}];
        }
    }

    // The realized per-target in-degree equals the scaled matrix,
    // except that recurrent (same-population) pairs lose the autapse
    // draws the generator skips: a 1/N fraction of them.
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        for (size_t s = 0; s < microcircuitPopulations; ++s) {
            double expected =
                static_cast<double>(inst.inDegrees[t][s] *
                                    inst.popSizes[t]);
            if (t == s)
                expected *= 1.0 - 1.0 / static_cast<double>(
                                            inst.popSizes[t]);
            const double got =
                static_cast<double>(counts[{t, s}]);
            if (expected == 0.0)
                EXPECT_EQ(got, 0.0) << "t=" << t << " s=" << s;
            else
                EXPECT_NEAR(got, expected, 0.01 * expected + 2.0)
                    << "t=" << t << " s=" << s;
        }
    }

    // Strongest published projections survive scaling: the L5I->L5E
    // loop (C = 0.373) must out-wire L5E's other inhibitory inputs.
    EXPECT_GT(inst.inDegrees[4][5], inst.inDegrees[4][3]);
    // L6I->L6E (0.225) dominates the other cross-layer inputs to
    // L6E.
    EXPECT_GT(inst.inDegrees[6][7], inst.inDegrees[6][1]);
}

TEST(Microcircuit, DelayRangesSplitByProjectionSign)
{
    MicrocircuitOptions opts;
    opts.scale = 80.0;
    MicrocircuitInstance inst = buildMicrocircuit(opts);
    const Network &net = inst.network;
    for (uint32_t src = 0; src < net.numNeurons(); ++src) {
        const size_t sp =
            &net.populationOf(src) - &net.population(0);
        const bool exc = sp % 2 == 0;
        for (const Synapse &syn : net.outgoing(src)) {
            if (exc) {
                EXPECT_EQ(syn.type, 0);
                EXPECT_GE(syn.delay, 8);
                EXPECT_LE(syn.delay, 23);
                EXPECT_GT(syn.weight, 0.0f);
            } else {
                EXPECT_EQ(syn.type, 1);
                EXPECT_GE(syn.delay, 4);
                EXPECT_LE(syn.delay, 11);
                EXPECT_LT(syn.weight, 0.0f);
            }
        }
    }
    EXPECT_GE(net.maxDelay(), 20);
}

TEST(Microcircuit, SeededBuildsReproduceAtSeveralScales)
{
    for (const double scale : {30.0, 60.0, 120.0}) {
        MicrocircuitOptions opts;
        opts.scale = scale;
        opts.seed = 11;
        MicrocircuitInstance a = buildMicrocircuit(opts);
        MicrocircuitInstance b = buildMicrocircuit(opts);
        ASSERT_EQ(a.network.numSynapses(), b.network.numSynapses())
            << "scale " << scale;
        ASSERT_EQ(a.network.numNeurons(), b.network.numNeurons());
        for (uint32_t src = 0; src < a.network.numNeurons();
             src += 17) {
            const auto ra = a.network.outgoing(src);
            const auto rb = b.network.outgoing(src);
            ASSERT_EQ(ra.size(), rb.size());
            for (size_t i = 0; i < ra.size(); ++i) {
                EXPECT_EQ(ra[i].target, rb[i].target);
                EXPECT_EQ(ra[i].weight, rb[i].weight);
                EXPECT_EQ(ra[i].delay, rb[i].delay);
            }
        }
        // A different seed rewires.
        opts.seed = 12;
        MicrocircuitInstance c = buildMicrocircuit(opts);
        bool differs =
            c.network.numSynapses() != a.network.numSynapses();
        for (uint32_t src = 0;
             !differs && src < a.network.numNeurons(); ++src) {
            const auto ra = a.network.outgoing(src);
            const auto rc = c.network.outgoing(src);
            if (ra.size() != rc.size()) {
                differs = true;
                break;
            }
            for (size_t i = 0; i < ra.size(); ++i)
                if (ra[i].target != rc[i].target) {
                    differs = true;
                    break;
                }
        }
        EXPECT_TRUE(differs) << "scale " << scale;
    }
}

TEST(Microcircuit, FewHertzRegimeAndRateKnob)
{
    MicrocircuitOptions opts;
    opts.scale = 50.0;
    MicrocircuitInstance inst = buildMicrocircuit(opts);
    Simulator sim(inst.network, inst.stimulus);
    sim.run(2000);
    const double background = sim.meanRate();
    EXPECT_GT(background, 1e-4) << "microcircuit is silent";
    EXPECT_LT(background, 3e-3) << "background regime too hot";

    opts.rateScale = 8.0;
    MicrocircuitInstance hot = buildMicrocircuit(opts);
    Simulator hotSim(hot.network, hot.stimulus);
    hotSim.run(2000);
    EXPECT_GT(hotSim.meanRate(), 3.0 * background);
    EXPECT_LT(hotSim.meanRate(), 0.05);
}

} // namespace
} // namespace flexon
