/**
 * @file
 * Tests for the hardware cost model: per-feature datapath
 * inventories, the Figure 12 composition properties (folded much
 * smaller than baseline; folded smaller than the heavy per-feature
 * paths), the CACTI-lite SRAM model, the Table VI calibration
 * targets, and the CPU/GPU baseline models.
 */

#include <gtest/gtest.h>

#include "hwmodel/array_cost.hh"
#include "hwmodel/baselines.hh"
#include "hwmodel/datapath_cost.hh"
#include "hwmodel/sram.hh"
#include "hwmodel/full_system.hh"
#include "hwmodel/timing.hh"

namespace flexon {
namespace {

TEST(DatapathUnits, SharedDecayPath)
{
    // CUB, EXD and LID share one data path (Figure 9a).
    const UnitCounts a = featureDatapathUnits(Feature::CUB);
    const UnitCounts b = featureDatapathUnits(Feature::EXD);
    const UnitCounts c = featureDatapathUnits(Feature::LID);
    EXPECT_EQ(a.mul, b.mul);
    EXPECT_EQ(b.mul, c.mul);
    EXPECT_EQ(a.add, c.add);
}

TEST(DatapathUnits, CobaEmbedsCobe)
{
    EXPECT_GT(featureDatapathUnits(Feature::COBA).mul,
              featureDatapathUnits(Feature::COBE).mul);
}

TEST(DatapathUnits, OnlyExiHasExponentiation)
{
    for (size_t i = 0; i < numFeatures; ++i) {
        const auto f = static_cast<Feature>(i);
        const UnitCounts u = featureDatapathUnits(f);
        EXPECT_EQ(u.exp, f == Feature::EXI ? 1 : 0) << featureName(f);
    }
}

TEST(DatapathUnits, ArHasNoArithmetic)
{
    // TrueNorth-style refractory logic needs no multipliers
    // (Section III-A's motivation for LLIF support).
    const UnitCounts u = featureDatapathUnits(Feature::AR);
    EXPECT_EQ(u.mul, 0);
    EXPECT_EQ(u.add, 0);
    EXPECT_EQ(u.counters, 1);
}

TEST(Fig12, FoldedEliminatesRedundantArithmetic)
{
    const UnitCounts base = flexonUnits();
    const UnitCounts folded = foldedUnits();
    EXPECT_GT(base.mul, 15);
    EXPECT_EQ(folded.mul, 1);
    EXPECT_EQ(folded.exp, 1);
    EXPECT_LE(folded.add, 2);
}

TEST(Fig12, AreaFoldFactorMatchesPaper)
{
    // Section VI: Flexon requires ~5.4-5.8x the chip area of
    // spatially folded Flexon.
    const double ratio =
        flexonNeuronCost().areaUm2 / foldedNeuronCost().areaUm2;
    EXPECT_GT(ratio, 4.5);
    EXPECT_LT(ratio, 6.5);
}

TEST(Fig12, PowerFoldFactorMatchesPaper)
{
    // Per-lane power ratio at the two design clocks (Table VI
    // implies ~2.5x; the paper quotes up to 3.44x across circuits).
    const double ratio =
        flexonNeuronCost().powerMw / foldedNeuronCost().powerMw;
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 3.6);
}

TEST(Fig12, FoldedSmallerThanHeavyPerFeaturePaths)
{
    // Figure 12: folded Flexon is even smaller than some standalone
    // per-feature data paths (EXI, RR) once their redundant units
    // are shared. Compare at equal clock.
    const UnitCosts &p = tsmc45();
    const double folded =
        costOf(foldedUnits(), p, 250.0e6).areaUm2;
    const double exi_plus_rr =
        costOf(featureDatapathUnits(Feature::EXI) +
                   featureDatapathUnits(Feature::RR),
               p, 250.0e6)
            .areaUm2;
    EXPECT_LT(folded, exi_plus_rr);
}

TEST(Fig12, EveryFeatureDatapathFarSmallerThanFlexon)
{
    const UnitCosts &p = tsmc45();
    const double flexon = costOf(flexonUnits(), p, 250.0e6).areaUm2;
    for (size_t i = 0; i < numFeatures; ++i) {
        const auto f = static_cast<Feature>(i);
        const double dp =
            costOf(featureDatapathUnits(f), p, 250.0e6).areaUm2;
        EXPECT_LT(dp, 0.35 * flexon) << featureName(f);
    }
}

TEST(Sram, AreaScalesWithCapacityAndPorts)
{
    SramConfig small{1 << 20, 1, 250.0e6, 64.0};
    SramConfig big{1 << 22, 1, 250.0e6, 64.0};
    SramConfig dual{1 << 20, 2, 250.0e6, 64.0};
    EXPECT_NEAR(sramCost(big).areaMm2 / sramCost(small).areaMm2, 4.0,
                0.01);
    EXPECT_GT(sramCost(dual).areaMm2, sramCost(small).areaMm2);
}

TEST(Sram, PowerHasLeakageFloorAndDynamicSlope)
{
    SramConfig idle{1 << 22, 1, 250.0e6, 0.0};
    SramConfig busy{1 << 22, 1, 250.0e6, 512.0};
    EXPECT_GT(sramCost(idle).powerW, 0.0);
    EXPECT_GT(sramCost(busy).powerW, sramCost(idle).powerW);
}

TEST(TableVI, FlexonArrayWithinCalibrationTolerance)
{
    const ArrayCost c = flexonArrayCost();
    EXPECT_EQ(c.lanes, 12u);
    // Paper: neuron 1.188 mm^2, SRAM 8.070 mm^2, total 9.258 mm^2;
    // power 0.130 / 0.751 / 0.881 W.
    EXPECT_NEAR(c.neuronAreaMm2, 1.188, 0.12);
    EXPECT_NEAR(c.sramAreaMm2, 8.070, 0.81);
    EXPECT_NEAR(c.totalAreaMm2, 9.258, 0.93);
    EXPECT_NEAR(c.neuronPowerW, 0.130, 0.015);
    EXPECT_NEAR(c.sramPowerW, 0.751, 0.10);
    EXPECT_NEAR(c.totalPowerW, 0.881, 0.11);
}

TEST(TableVI, FoldedArrayWithinCalibrationTolerance)
{
    const ArrayCost c = foldedArrayCost();
    EXPECT_EQ(c.lanes, 72u);
    // Paper: neuron 1.294 mm^2, SRAM 6.324 mm^2, total 7.618 mm^2;
    // power 0.305 / 1.179 / 1.484 W.
    EXPECT_NEAR(c.neuronAreaMm2, 1.294, 0.15);
    EXPECT_NEAR(c.sramAreaMm2, 6.324, 0.64);
    EXPECT_NEAR(c.totalAreaMm2, 7.618, 0.80);
    EXPECT_NEAR(c.neuronPowerW, 0.305, 0.05);
    EXPECT_NEAR(c.sramPowerW, 1.179, 0.18);
    EXPECT_NEAR(c.totalPowerW, 1.484, 0.23);
}

TEST(TableVI, ArraysAreFarSmallerThanGeneralPurposeChips)
{
    // Sanity property from Section VI-C: both arrays fit in under
    // 10 mm^2 (a server CPU die is an order of magnitude larger).
    EXPECT_LT(flexonArrayCost().totalAreaMm2, 10.0);
    EXPECT_LT(foldedArrayCost().totalAreaMm2, 10.0);
}

TEST(TableVI, EnergyAccounting)
{
    const ArrayCost c = flexonArrayCost();
    const double e = c.energyJ(static_cast<uint64_t>(c.clockHz));
    EXPECT_NEAR(e, c.totalPowerW, 1e-9); // one second of cycles
}

TEST(Baselines, CpuScalesLinearlyWithNeurons)
{
    const BenchmarkSpec &spec = findBenchmark("Vogels");
    const double t1 =
        neuronPhaseSeconds(Platform::CpuXeon, spec, 1000);
    const double t2 =
        neuronPhaseSeconds(Platform::CpuXeon, spec, 2000);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(Baselines, GpuHasLaunchOverhead)
{
    const BenchmarkSpec &spec = findBenchmark("Destexhe-LTS");
    const double tiny =
        neuronPhaseSeconds(Platform::GpuTitanX, spec, 1);
    EXPECT_GT(tiny, 1.0e-6); // dominated by the kernel launch
    // For small networks the GPU is slower per neuron than its
    // throughput suggests.
    const double t500 =
        neuronPhaseSeconds(Platform::GpuTitanX, spec, 500);
    EXPECT_GT(t500 / 500.0, 5.0e-9);
}

TEST(Baselines, Rkf45BenchmarksCostMoreThanEuler)
{
    const double rkf = neuronPhaseSeconds(
        Platform::CpuXeon, findBenchmark("Vogels"), 1000);
    const double euler = neuronPhaseSeconds(
        Platform::CpuXeon, findBenchmark("Potjans-Diesmann"), 1000);
    EXPECT_GT(rkf, 3.0 * euler);
}

TEST(Baselines, PhaseSharesSumToOne)
{
    for (Platform p : {Platform::CpuXeon, Platform::GpuTitanX}) {
        for (const BenchmarkSpec &spec : table1Benchmarks()) {
            const PhaseShares s = phaseShares(p, spec);
            EXPECT_NEAR(s.stimulus + s.neuron + s.synapse, 1.0, 1e-9);
            EXPECT_GT(s.neuron, 0.0);
        }
    }
}

TEST(Baselines, NeuronShareLargerOnCpu)
{
    // Figure 3: neuron computation dominates CPU runs and shrinks
    // (but stays significant, up to ~32 %) on GPU.
    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        const PhaseShares cpu =
            phaseShares(Platform::CpuXeon, spec);
        const PhaseShares gpu =
            phaseShares(Platform::GpuTitanX, spec);
        EXPECT_GT(cpu.neuron, gpu.neuron) << spec.name;
        EXPECT_GE(gpu.neuron, 0.1) << spec.name;
        EXPECT_LE(gpu.neuron, 0.35) << spec.name;
    }
}

TEST(Baselines, PlatformPowerOrdering)
{
    EXPECT_GT(platformPowerW(Platform::CpuXeon), 10.0);
    EXPECT_GT(platformPowerW(Platform::GpuTitanX), 10.0);
    // Both dwarf the sub-2 W arrays (the energy-efficiency story).
    EXPECT_GT(platformPowerW(Platform::CpuXeon),
              20.0 * flexonArrayCost().totalPowerW);
}

TEST(Timing, ShippedDesignsCloseAtPaperClocks)
{
    // 20 % slack margin, as in Section VI-A.
    const double flexon_hz = maxClockHz(flexonCriticalPath());
    const double folded_hz = maxClockHz(foldedCriticalPath());
    EXPECT_GT(flexon_hz, 225.0e6);
    EXPECT_LT(flexon_hz, 305.0e6);
    EXPECT_GT(folded_hz, 400.0e6);
    EXPECT_LT(folded_hz, 560.0e6);
    EXPECT_GT(folded_hz, 1.5 * flexon_hz);
}

TEST(Timing, ExiBindsOnlyWithoutTheOptimizations)
{
    // Section IV-B1: the EXI data path was on the critical path; the
    // fast exp + tree-top placement push it off.
    const CriticalPath naive = flexonCriticalPath(false, false);
    EXPECT_NE(naive.name.find("EXI"), std::string::npos);
    const CriticalPath shipped = flexonCriticalPath(true, true);
    EXPECT_EQ(shipped.name.find("EXI"), std::string::npos);
}

TEST(Timing, OptimizationsMonotonicallyImproveClock)
{
    const double naive_bottom =
        maxClockHz(flexonCriticalPath(false, false));
    const double naive_top =
        maxClockHz(flexonCriticalPath(false, true));
    const double fast_any =
        maxClockHz(flexonCriticalPath(true, false));
    EXPECT_LT(naive_bottom, naive_top);
    EXPECT_LT(naive_top, fast_any);
}

TEST(Timing, PathDelayIsAdditive)
{
    const UnitDelays &d = tsmc45Delays();
    const CriticalPath two_muls = {"x", {"mul", "mul"}};
    const CriticalPath one_mul = {"x", {"mul"}};
    EXPECT_NEAR(pathDelayNs(two_muls, d),
                2.0 * pathDelayNs(one_mul, d), 1e-12);
}

TEST(Timing, SlackMarginScalesClock)
{
    const CriticalPath p = foldedCriticalPath();
    EXPECT_NEAR(maxClockHz(p, tsmc45Delays(), 0.0),
                1.2 * maxClockHz(p, tsmc45Delays(), 0.2), 1e-3);
}

TEST(FullSystem, ActivityDerivation)
{
    const BenchmarkSpec &spec = findBenchmark("Vogels-Abbott");
    const StepActivity a = benchmarkActivity(spec, 0.02);
    EXPECT_EQ(a.neurons, 4000u);
    EXPECT_NEAR(a.spikes, 80.0, 1e-9);
    // 320k synapses / 4k neurons = 80 mean fan-out.
    EXPECT_NEAR(a.synapseEvents, 80.0 * 80.0, 1e-6);
}

TEST(FullSystem, SynapseStageComputeVsMemoryBound)
{
    // Default config: 8 B/event at 25.6 GB/s (3.2 Gevents/s) is
    // slower than 8 lanes x 500 MHz (4 Gevents/s), so the stage is
    // memory-bound.
    SynapseStageConfig config;
    const double events = 1.0e6;
    EXPECT_NEAR(synapseStageSeconds(config, events),
                events * 8.0 / 25.6e9, 1e-12);

    // With ample bandwidth the accumulate lanes bind instead.
    SynapseStageConfig wide = config;
    wide.memoryBandwidth = 1.0e12;
    EXPECT_NEAR(synapseStageSeconds(wide, events),
                events / (8.0 * 500.0e6), 1e-12);
}

TEST(FullSystem, StepComposition)
{
    const BenchmarkSpec &spec = findBenchmark("Brunel");
    const StepActivity a = benchmarkActivity(spec);
    const FullSystemStep step = fullSystemStep(a, 1.0e-6);
    EXPECT_DOUBLE_EQ(step.neuronSec, 1.0e-6);
    EXPECT_GT(step.stimulusSec, 0.0);
    EXPECT_GT(step.synapseSec, 0.0);
    EXPECT_NEAR(step.totalSec(),
                step.stimulusSec + step.neuronSec + step.synapseSec,
                1e-18);
}

TEST(FullSystem, EndToEndBeatsNeuronOnlyOffload)
{
    // With all three stages in hardware, the end-to-end speedup must
    // exceed the Amdahl ceiling of neuron-only offload for at least
    // the RKF45 benchmarks (share 0.8 -> ceiling 5x).
    const BenchmarkSpec &spec = findBenchmark("Vogels");
    const PhaseShares shares = phaseShares(Platform::CpuXeon, spec);
    const double cpu_total =
        neuronPhaseSeconds(Platform::CpuXeon, spec, spec.neurons) /
        shares.neuron;
    const FullSystemStep step =
        fullSystemStep(benchmarkActivity(spec), 2.0e-6);
    EXPECT_GT(cpu_total / step.totalSec(),
              1.0 / (1.0 - shares.neuron));
}

TEST(NodeScaling, QuadraticAreaLinearPower)
{
    const UnitCosts base = tsmc45();
    const UnitCosts n16 = scaleToNode(base, 45.0, 16.0);
    const double r = 16.0 / 45.0;
    EXPECT_NEAR(n16.mulArea, base.mulArea * r * r, 1e-9);
    EXPECT_NEAR(n16.mulPower, base.mulPower * r, 1e-9);
    // The fold factor (a ratio) is node-invariant.
    const double fold45 = costOf(flexonUnits(), base, 250e6).areaUm2 /
                          costOf(foldedUnits(), base, 250e6).areaUm2;
    const double fold16 = costOf(flexonUnits(), n16, 250e6).areaUm2 /
                          costOf(foldedUnits(), n16, 250e6).areaUm2;
    EXPECT_NEAR(fold45, fold16, 1e-9);
}

TEST(PowerGating, SimpleModelsDrawFarLessPower)
{
    // Section IV-B: latches switch unused data paths off. A LIF
    // configuration should toggle a small fraction of the full
    // design; AdEx most of it.
    const FeatureSet lif{Feature::EXD, Feature::CUB};
    const FeatureSet adex{Feature::EXD,  Feature::COBE, Feature::REV,
                          Feature::EXI,  Feature::ADT,  Feature::SBT,
                          Feature::AR};
    const double full = flexonNeuronCost().powerMw;
    const double p_lif = flexonGatedCost(lif, 1).powerMw;
    const double p_adex = flexonGatedCost(adex, 2).powerMw;
    EXPECT_LT(p_lif, 0.45 * full);
    EXPECT_GT(p_adex, p_lif * 2.0);
    EXPECT_LE(p_adex, full * 1.001);
}

TEST(PowerGating, AreaIsUnchanged)
{
    const FeatureSet lif{Feature::EXD, Feature::CUB};
    EXPECT_DOUBLE_EQ(flexonGatedCost(lif, 1).areaUm2,
                     flexonNeuronCost().areaUm2);
}

} // namespace
} // namespace flexon
