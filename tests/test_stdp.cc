/**
 * @file
 * Tests for the STDP engine: trace dynamics, the sign of the learning
 * window (pre-before-post potentiates, post-before-pre depresses),
 * weight clamping, type selectivity, and the classic correlation
 * experiment (synapses from inputs correlated with the postsynaptic
 * neuron win the competition).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/model_table.hh"
#include "snn/simulator.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

/** Two neurons, one plastic synapse 0 -> 1. */
Network
pairNetwork(float w0, uint8_t type = 0)
{
    Network net;
    net.addPopulation("pair", defaultParams(ModelKind::LIF), 2);
    net.addSynapse(0, {1, w0, 1, type});
    net.finalize();
    return net;
}

/** Drive the engine with an explicit spike schedule. */
void
applySchedule(StdpEngine &engine, size_t neurons,
              const std::vector<std::pair<int, uint32_t>> &spikes,
              int steps)
{
    std::vector<uint8_t> fired(neurons, 0);
    for (int t = 0; t < steps; ++t) {
        std::fill(fired.begin(), fired.end(), uint8_t{0});
        for (const auto &[when, who] : spikes)
            if (when == t)
                fired[who] = 1;
        engine.onStep(fired);
    }
}

TEST(Stdp, TraceBumpsAndDecays)
{
    Network net = pairNetwork(0.5f);
    StdpConfig config;
    config.tauPlus = 100.0;
    StdpEngine engine(net, config);
    applySchedule(engine, 2, {{0, 0}}, 1);
    EXPECT_DOUBLE_EQ(engine.preTrace(0), 1.0);
    applySchedule(engine, 2, {}, 100);
    EXPECT_NEAR(engine.preTrace(0), std::exp(-1.0), 0.01);
}

TEST(Stdp, PreBeforePostPotentiates)
{
    Network net = pairNetwork(0.5f);
    StdpEngine engine(net);
    // Pre (0) fires at t=5; post (1) fires at t=10.
    applySchedule(engine, 2, {{5, 0}, {10, 1}}, 20);
    EXPECT_GT(net.outgoing(0)[0].weight, 0.5f);
}

TEST(Stdp, PostBeforePreDepresses)
{
    Network net = pairNetwork(0.5f);
    StdpEngine engine(net);
    applySchedule(engine, 2, {{5, 1}, {10, 0}}, 20);
    EXPECT_LT(net.outgoing(0)[0].weight, 0.5f);
}

TEST(Stdp, WindowDecaysWithLag)
{
    auto potentiation = [](int lag) {
        Network net = pairNetwork(0.5f);
        StdpEngine engine(net);
        applySchedule(engine, 2, {{5, 0}, {5 + lag, 1}},
                      5 + lag + 5);
        return net.outgoing(0)[0].weight - 0.5f;
    };
    const float near = potentiation(2);
    const float far = potentiation(150);
    EXPECT_GT(near, far);
    EXPECT_GT(far, 0.0f);
}

TEST(Stdp, WeightsClampToBounds)
{
    Network net = pairNetwork(0.99f);
    StdpConfig config;
    config.aPlus = 0.5;
    config.wMax = 1.0f;
    StdpEngine engine(net, config);
    for (int round = 0; round < 10; ++round)
        applySchedule(engine, 2, {{1, 0}, {2, 1}}, 5);
    EXPECT_LE(net.outgoing(0)[0].weight, 1.0f);

    Network net2 = pairNetwork(0.01f);
    StdpConfig config2;
    config2.aMinus = 0.5;
    config2.wMin = 0.0f;
    StdpEngine engine2(net2, config2);
    for (int round = 0; round < 10; ++round)
        applySchedule(engine2, 2, {{1, 1}, {2, 0}}, 5);
    EXPECT_GE(net2.outgoing(0)[0].weight, 0.0f);
}

TEST(Stdp, NonPlasticTypesUntouched)
{
    Network net = pairNetwork(0.5f, /*type=*/1); // inhibitory slot
    StdpEngine engine(net); // plasticType defaults to 0
    EXPECT_EQ(engine.plasticSynapses(), 0u);
    applySchedule(engine, 2, {{5, 0}, {10, 1}}, 20);
    EXPECT_FLOAT_EQ(net.outgoing(0)[0].weight, 0.5f);
}

TEST(Stdp, ExactCoincidenceIsNotDoubleCounted)
{
    // Same-step pre and post: LTD reads the post trace before its
    // bump and LTP reads the pre trace before its bump, so the net
    // change from a single exact coincidence is zero.
    Network net = pairNetwork(0.5f);
    StdpEngine engine(net);
    applySchedule(engine, 2, {{5, 0}, {5, 1}}, 10);
    EXPECT_FLOAT_EQ(net.outgoing(0)[0].weight, 0.5f);
}

TEST(Stdp, CorrelatedInputsWinTheCompetition)
{
    // 20 inputs feed one LIF output. Inputs 0..9 fire together
    // (correlated with the output's spikes they cause); inputs
    // 10..19 fire independently at the same mean rate. The classic
    // result: correlated synapses end up stronger.
    // Weights are sized so a synchronous volley fires the output
    // (10 x 15 x eps_m = 1.5 > threshold) while the mean asynchronous
    // drive stays subthreshold (20 x 15 x 0.005 x 1 = 0.15).
    Network net;
    NeuronParams lif = defaultParams(ModelKind::LIF);
    net.addPopulation("in", lif, 20);
    net.addPopulation("out", lif, 1);
    for (uint32_t i = 0; i < 20; ++i)
        net.addSynapse(i, {20, 15.0f, 1, 0});
    net.finalize();

    StdpConfig config;
    config.aPlus = 0.02;
    config.aMinus = 0.002; // mild depression for this driven setup
    config.tauPlus = 20.0;
    config.tauMinus = 20.0;
    config.wMax = 30.0f;
    config.wMin = 2.0f;
    StdpEngine engine(net, config);

    // External forcing of the input layer plus manual one-step-delay
    // routing through the plastic synapses (weights are read live,
    // so the STDP updates feed back into the dynamics).
    auto backend = makeReferenceBackend(net);
    Rng rng(123);
    std::vector<double> input(net.numNeurons() * maxSynapseTypes,
                              0.0);
    std::vector<double> routed(input.size(), 0.0);
    std::vector<uint8_t> fired;
    for (int t = 0; t < 60000; ++t) {
        std::swap(input, routed);
        std::fill(routed.begin(), routed.end(), 0.0);
        const bool volley = rng.bernoulli(0.005);
        for (uint32_t i = 0; i < 10; ++i)
            if (volley)
                input[i * maxSynapseTypes] = 200.0;
        for (uint32_t i = 10; i < 20; ++i)
            if (rng.bernoulli(0.005))
                input[i * maxSynapseTypes] = 200.0;

        backend->step(input, fired);
        engine.onStep(fired);
        for (uint32_t i = 0; i < 20; ++i) {
            if (fired[i]) {
                const Synapse &syn = net.outgoing(i)[0];
                routed[syn.target * maxSynapseTypes + syn.type] +=
                    syn.weight;
            }
        }
    }

    double corr = 0.0, uncorr = 0.0;
    for (uint32_t i = 0; i < 10; ++i)
        corr += net.outgoing(i)[0].weight;
    for (uint32_t i = 10; i < 20; ++i)
        uncorr += net.outgoing(i)[0].weight;
    EXPECT_GT(corr / 10.0, 1.15 * (uncorr / 10.0));
}

TEST(Stdp, MeanWeightDiagnostics)
{
    Network net = pairNetwork(0.5f);
    StdpEngine engine(net);
    EXPECT_EQ(engine.plasticSynapses(), 1u);
    EXPECT_FLOAT_EQ(static_cast<float>(engine.meanPlasticWeight()),
                    0.5f);
}

} // namespace
} // namespace flexon
