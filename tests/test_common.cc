/**
 * @file
 * Unit tests for the common utilities: RNG determinism and
 * distribution statistics, running summaries, geometric means, the
 * histogram, and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/debug.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace flexon {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRangeAndMean)
{
    Rng rng(7);
    Summary s;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntUnbiased)
{
    Rng rng(11);
    std::array<int, 7> counts{};
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    Summary s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(19);
    Summary small, large;
    for (int i = 0; i < 50000; ++i) {
        small.add(static_cast<double>(rng.poisson(2.5)));
        large.add(static_cast<double>(rng.poisson(80.0)));
    }
    EXPECT_NEAR(small.mean(), 2.5, 0.05);
    EXPECT_NEAR(small.variance(), 2.5, 0.1);
    EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    Summary s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, StateRestoreContinuesTheIdenticalStream)
{
    // Interleave distributions so the Box-Muller cache is in flight
    // at capture time, then prove the restored stream is
    // indistinguishable from the uninterrupted one.
    Rng reference(77);
    Rng captured(77);
    for (int i = 0; i < 137; ++i) {
        reference.normal();
        captured.normal();
        reference.uniform();
        captured.uniform();
    }
    reference.normal(); // leaves one cached normal pending
    captured.normal();

    const RngState state = captured.state();
    Rng restored(12345); // different seed: state must fully replace it
    restored.setState(state);

    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(restored.normal(), reference.normal()) << i;
        EXPECT_EQ(restored.next(), reference.next()) << i;
        EXPECT_EQ(restored.uniform(), reference.uniform()) << i;
        EXPECT_EQ(restored.poisson(3.0), reference.poisson(3.0)) << i;
        EXPECT_EQ(restored.bernoulli(0.4), reference.bernoulli(0.4))
            << i;
    }
}

TEST(Rng, SetStateRejectsAllZeroState)
{
    Rng rng(1);
    RngState dead; // all-zero xoshiro state is a fixed point
    EXPECT_DEATH(rng.setState(dead), "all-zero");
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, GeomeanMatchesClosedForm)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({10.0, 10.0, 10.0}), 10.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, MeanMatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 6.0}), 3.0);
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamped to bin 0
    h.add(42.0);  // clamped to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_NEAR(h.binCenter(0), 0.5, 1e-12);
    EXPECT_NEAR(h.binCenter(9), 9.5, 1e-12);
}

TEST(Histogram, PercentileInterpolatesBinCenters)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i / 10.0); // uniform over [0, 10)
    // Uniform fill: percentiles track the matching bin centers.
    EXPECT_NEAR(h.percentile(50.0), 4.5, 1.0);
    EXPECT_NEAR(h.percentile(90.0), 8.5, 1.0);
    // Out-of-range p clamps to [0, 100].
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(150.0), h.percentile(100.0));
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(Histogram, PercentileSingleBin)
{
    Histogram h(0.0, 2.0, 1);
    h.add(0.3);
    h.add(1.7);
    // Everything lands in the lone bin; every percentile is its
    // center.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.0);
}

TEST(Histogram, MergeAddsBinwise)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(0.5);
    a.add(5.5);
    b.add(5.5);
    b.add(9.5);
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.binCount(0), 1u);
    EXPECT_EQ(a.binCount(5), 2u);
    EXPECT_EQ(a.binCount(9), 1u);
    // The merged-from histogram is untouched.
    EXPECT_EQ(b.total(), 2u);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::ratio(122.456, 1), "122.5x");
}

TEST(Debug, FlagsToggleAtRuntime)
{
    EXPECT_FALSE(debug::enabled("UnitTestFlag"));
    debug::enable("UnitTestFlag");
    EXPECT_TRUE(debug::enabled("UnitTestFlag"));
    debug::disable("UnitTestFlag");
    EXPECT_FALSE(debug::enabled("UnitTestFlag"));
}

TEST(Debug, AllEnablesEverything)
{
    debug::enable("All");
    EXPECT_TRUE(debug::enabled("AnythingAtAll"));
    debug::disable("All");
    EXPECT_FALSE(debug::enabled("AnythingAtAll"));
}

TEST(Debug, MacroCompilesAndIsSilentWhenDisabled)
{
    // Must not print (nothing asserts output; this is a smoke and
    // compile check for the macro form).
    FLEXON_DPRINTF(UnitTestFlag, "value %d", 42);
    SUCCEED();
}

TEST(Logging, FatalExitsWithUserErrorStatus)
{
    // fatal() = user error: exit(1), message prefixed "fatal:".
    EXPECT_EXIT(fatal("bad config value %d", 7),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(Logging, PanicAbortsOnInternalBug)
{
    // panic() = internal invariant violation: abort().
    EXPECT_DEATH(panic("impossible state %s", "x"),
                 "panic: impossible state");
}

TEST(Logging, AssertMacroReportsLocation)
{
    EXPECT_DEATH(flexon_assert(1 + 1 == 3), "assertion");
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    inform("informational %d", 1);
    warn("suspicious but survivable");
    SUCCEED();
}

} // namespace
} // namespace flexon
