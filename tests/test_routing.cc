/**
 * @file
 * Bit-identity of the packed routing-table delivery engine
 * (snn/routing.hh) against a naive serial delivery oracle: same
 * spikes, same ring doubles, same synapse-event counts, at thread
 * counts 1/3/4, with mixed delays spanning the full ring depth,
 * multiple synapse types and multiple populations — plus the
 * sparse/dense ring-clear crossover and live STDP weight updates.
 *
 * The oracle replays the exact pre-routing-table semantics: dense
 * std::fill slot clears and per-fired-source scans of
 * Network::outgoing() in source-ascending, row order.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "features/model_table.hh"
#include "snn/event_driven.hh"
#include "snn/routing.hh"
#include "snn/simulator.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

/** The seed's serial synapse phase, reimplemented verbatim. */
class OracleSimulator
{
  public:
    OracleSimulator(const Network &net, StimulusGenerator stim,
                    BackendKind kind = BackendKind::Reference)
        : net_(net), stim_(std::move(stim)),
          backend_(makeBackend(kind, net, IntegrationMode::Discrete,
                               SolverKind::Euler, 1)),
          ringDepth_(static_cast<size_t>(net.maxDelay()) + 1),
          slotSize_(net.numNeurons() * maxSynapseTypes),
          ring_(ringDepth_ * slotSize_, 0.0),
          counts_(net.numNeurons(), 0)
    {
    }

    void
    stepOnce()
    {
        double *const cur =
            ring_.data() + (t_ % ringDepth_) * slotSize_;
        for (const StimulusSpike &s : stim_.generate(t_))
            cur[s.target * maxSynapseTypes + s.type] += s.weight;
        backend_->step({cur, slotSize_}, fired_);
        std::fill(cur, cur + slotSize_, 0.0);
        const auto n = static_cast<uint32_t>(net_.numNeurons());
        for (uint32_t i = 0; i < n; ++i) {
            if (!fired_[i])
                continue;
            events_.push_back({t_, i});
            ++counts_[i];
            for (const Synapse &syn : net_.outgoing(i)) {
                ring_[((t_ + syn.delay) % ringDepth_) * slotSize_ +
                      syn.target * maxSynapseTypes + syn.type] +=
                    syn.weight;
                ++synapseEvents_;
            }
        }
        ++t_;
    }

    const Network &net_;
    StimulusGenerator stim_;
    std::unique_ptr<NeuronBackend> backend_;
    size_t ringDepth_;
    size_t slotSize_;
    std::vector<double> ring_;
    std::vector<uint8_t> fired_;
    std::vector<uint64_t> counts_;
    std::vector<SpikeEvent> events_;
    uint64_t synapseEvents_ = 0;
    uint64_t t_ = 0;
};

/** Bitwise ring comparison (0.0 vs -0.0 must not slip through). */
void
expectRingBitIdentical(const std::vector<double> &oracle,
                       const std::vector<double> &actual,
                       uint64_t step)
{
    ASSERT_EQ(oracle.size(), actual.size());
    if (std::memcmp(oracle.data(), actual.data(),
                    oracle.size() * sizeof(double)) == 0)
        return;
    for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(oracle[i], actual[i])
            << "ring cell " << i << " diverged at step " << step;
    }
    FAIL() << "ring bit pattern diverged at step " << step;
}

/**
 * Three populations, synapse types 0..3, delays spanning the full
 * ring (1..maxDelay, including explicit maxDelay edges).
 */
Network
mixedNetwork(uint8_t maxDelay)
{
    Network net;
    const size_t a =
        net.addPopulation("a", defaultParams(ModelKind::DLIF), 40);
    const size_t b =
        net.addPopulation("b", defaultParams(ModelKind::LIF), 30);
    const size_t c =
        net.addPopulation("c", defaultParams(ModelKind::DLIF), 25);
    Rng rng(77);
    net.connectRandom(a, b, 0.15, 0.08, 1, maxDelay, 0, rng);
    net.connectRandom(b, c, 0.15, 0.07, 1, maxDelay, 1, rng);
    net.connectRandom(c, a, 0.15, 0.06, 2, maxDelay, 2, rng);
    net.connectRandom(a, a, 0.10, -0.05, 1, 3, 3, rng);
    // Edge delays: exactly 1 and exactly maxDelay (full ring span).
    net.addSynapse(0, {50, 0.2f, 1, 0});
    net.addSynapse(1, {51, 0.2f, maxDelay, 1});
    net.addSynapse(2, {94, -0.1f, maxDelay, 3});
    net.finalize();
    return net;
}

StimulusGenerator
mixedStimulus()
{
    StimulusGenerator stim(11);
    stim.addSource(StimulusSource::poisson(0, 95, 0.08, 0.5f, 0));
    return stim;
}

class RoutingEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RoutingEquivalence, BitIdenticalToNaiveOracle)
{
    const size_t threads = GetParam();
    Network net = mixedNetwork(8);
    ASSERT_EQ(net.maxDelay(), 8); // delays span the full ring

    SimulatorOptions opts;
    opts.threads = threads;
    opts.recordSpikes = true;
    Simulator sim(net, mixedStimulus(), opts);
    OracleSimulator oracle(net, mixedStimulus());

    for (uint64_t step = 0; step < 400; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
        ASSERT_EQ(oracle.fired_, sim.lastFired()) << "step " << step;
        expectRingBitIdentical(oracle.ring_, sim.ringBuffer(), step);
    }

    EXPECT_GT(oracle.events_.size(), 0u) << "network stayed silent";
    EXPECT_EQ(oracle.counts_, sim.spikeCounts());
    EXPECT_EQ(oracle.synapseEvents_, sim.stats().synapseEvents);
    ASSERT_EQ(oracle.events_.size(), sim.spikeEvents().size());
    for (size_t i = 0; i < oracle.events_.size(); ++i) {
        EXPECT_EQ(oracle.events_[i].step, sim.spikeEvents()[i].step);
        EXPECT_EQ(oracle.events_[i].neuron,
                  sim.spikeEvents()[i].neuron);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, RoutingEquivalence,
                         ::testing::Values(1, 3, 4),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

TEST(RoutingTable, LayoutPreservesRowOrderAndCoversAllSynapses)
{
    Network net = mixedNetwork(8);
    RoutingTable table(net, 3);
    const auto &begin = table.shardTargetBegin();

    // The (shard, bucket, src) row must equal the source's outgoing
    // row filtered to that shard's target range and that bucket's
    // delay, in original row order — the order-preservation
    // invariant the bit-identity argument rests on.
    uint64_t covered = 0;
    for (size_t s = 0; s < table.shardCount(); ++s) {
        for (size_t b = 0; b < table.bucketCount(); ++b) {
            for (uint32_t src = 0; src < net.numNeurons(); ++src) {
                std::vector<DeliveryRecord> expected;
                for (const Synapse &syn : net.outgoing(src)) {
                    if (syn.delay != table.bucketDelay(b) ||
                        syn.target < begin[s] ||
                        syn.target >= begin[s + 1])
                        continue;
                    expected.push_back(
                        {static_cast<uint32_t>(
                             syn.target * maxSynapseTypes + syn.type),
                         syn.weight});
                }
                const auto row = table.row(s, b, src);
                ASSERT_EQ(expected.size(), row.size());
                for (size_t i = 0; i < row.size(); ++i) {
                    EXPECT_EQ(expected[i].cell, row[i].cell);
                    EXPECT_EQ(expected[i].weight, row[i].weight);
                }
                covered += row.size();
            }
        }
    }
    EXPECT_EQ(covered, net.numSynapses());
    EXPECT_GT(table.memoryBytes(),
              net.numSynapses() * sizeof(DeliveryRecord));
}

TEST(RingMaintenance, QuietNetworkClearsSparsely)
{
    // A nearly silent chain: per-step activity touches a handful of
    // cells, far below the dense-fill crossover.
    Network net;
    NeuronParams p = defaultParams(ModelKind::LIF);
    net.addPopulation("quiet", p, 400);
    net.addSynapse(0, {1, 150.0f, 1, 0});
    net.addSynapse(0, {2, 150.0f, 2, 0});
    net.finalize();
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 50, 150.0f, 0));

    SimulatorOptions opts;
    opts.threads = 3;
    Simulator sim(net, stim, opts);
    OracleSimulator oracle(net, stim);
    for (int step = 0; step < 300; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
        expectRingBitIdentical(oracle.ring_, sim.ringBuffer(),
                               static_cast<uint64_t>(step));
    }
    const PhaseStats &st = sim.stats();
    EXPECT_EQ(st.ringDenseClears, 0u);
    EXPECT_EQ(st.ringSparseClears, 300u);
    EXPECT_GT(st.spikes, 0u);
    // Sparse clears undo far fewer cells than 300 dense fills would.
    EXPECT_LT(st.ringCellsCleared,
              300u * net.numNeurons() * maxSynapseTypes / 10);
}

TEST(RingMaintenance, DenseActivityFallsBackToFill)
{
    // Dense wiring + every neuron driven every step: the tracked
    // clear cost crosses the budget and the engine must fall back to
    // std::fill — and stay bit-identical while doing so.
    Network net;
    NeuronParams p = defaultParams(ModelKind::LIF);
    const size_t a = net.addPopulation("dense", p, 60);
    Rng rng(5);
    net.connectRandom(a, a, 0.9, 0.1, 1, 2, 0, rng);
    net.finalize();
    StimulusGenerator stim(3);
    stim.addSource(StimulusSource::pattern(0, 60, 1, 150.0f, 0));

    SimulatorOptions opts;
    opts.threads = 4;
    Simulator sim(net, stim, opts);
    OracleSimulator oracle(net, stim);
    for (int step = 0; step < 100; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
        expectRingBitIdentical(oracle.ring_, sim.ringBuffer(),
                               static_cast<uint64_t>(step));
    }
    EXPECT_GT(sim.stats().ringDenseClears, 0u);
    EXPECT_EQ(sim.stats().ringDenseClears +
                  sim.stats().ringSparseClears,
              100u);
}

TEST(RoutingRefresh, StdpWeightUpdatesReachTheTable)
{
    // Two identical runs, each with its own network copy and STDP
    // engine mutating weights in place every step: the packed table
    // (simulator) must mirror the live weights the oracle reads.
    auto makeNet = [] {
        Network net;
        NeuronParams p = defaultParams(ModelKind::DLIF);
        const size_t a = net.addPopulation("plastic", p, 50);
        Rng rng(21);
        net.connectRandom(a, a, 0.2, 0.3, 1, 5, 0, rng);
        net.finalize();
        return net;
    };
    StimulusGenerator stim(13);
    stim.addSource(StimulusSource::poisson(0, 50, 0.10, 0.6f, 0));

    Network simNet = makeNet();
    Network oracleNet = makeNet();
    StdpConfig cfg;
    cfg.wMax = 0.6f;
    StdpEngine simStdp(simNet, cfg);
    StdpEngine oracleStdp(oracleNet, cfg);

    SimulatorOptions opts;
    opts.threads = 3;
    opts.recordSpikes = true;
    Simulator sim(simNet, stim, opts);
    OracleSimulator oracle(oracleNet, stim);

    for (uint64_t step = 0; step < 500; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
        simStdp.onStep(sim.lastFired());
        oracleStdp.onStep(oracle.fired_);
        ASSERT_EQ(oracle.fired_, sim.lastFired()) << "step " << step;
        expectRingBitIdentical(oracle.ring_, sim.ringBuffer(), step);
    }
    EXPECT_GT(sim.stats().spikes, 0u);
    // The run must actually have moved weights, or the test is vacuous.
    EXPECT_NE(simStdp.meanPlasticWeight(), 0.3);
    EXPECT_DOUBLE_EQ(simStdp.meanPlasticWeight(),
                     oracleStdp.meanPlasticWeight());
}

TEST(RoutingRefresh, FullRefreshAfterLogOverflow)
{
    // Mutate more synapses than the log ring holds between steps:
    // the table must fall back to a full weight mirror.
    Network net;
    NeuronParams p = defaultParams(ModelKind::LIF);
    const size_t a = net.addPopulation("big", p, 120);
    Rng rng(9);
    net.connectRandom(a, a, 0.5, 0.05, 1, 3, 0, rng);
    net.finalize();
    ASSERT_GT(net.numSynapses(), Network::weightLogCapacity);

    StimulusGenerator stim(7);
    stim.addSource(StimulusSource::poisson(0, 120, 0.1, 150.0f, 0));
    SimulatorOptions opts;
    opts.threads = 2;
    Simulator sim(net, stim, opts);
    OracleSimulator oracle(net, stim);

    for (uint64_t step = 0; step < 50; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
    }
    // Rewrite every weight in one burst (log overflows), then keep
    // comparing against an oracle over the same mutated network.
    for (uint64_t i = 0; i < net.numSynapses(); ++i)
        net.synapseAt(i).weight *= 0.5f;
    for (uint64_t step = 50; step < 120; ++step) {
        sim.stepOnce();
        oracle.stepOnce();
        ASSERT_EQ(oracle.fired_, sim.lastFired()) << "step " << step;
        expectRingBitIdentical(oracle.ring_, sim.ringBuffer(), step);
    }
    EXPECT_GT(sim.stats().spikes, 0u);
}

// ---- Sparse-activity delivery (activity bitmaps + shard skip) ---

/** A recurrent LLIF network every delivery engine can run. */
Network
llifNet(size_t neurons, uint64_t seed)
{
    Network net;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    const size_t a = net.addPopulation("llif-a", p, neurons / 2);
    const size_t b =
        net.addPopulation("llif-b", p, neurons - neurons / 2);
    Rng rng(seed);
    net.connectRandom(a, b, 0.06, 0.35, 1, 9, 0, rng);
    net.connectRandom(b, a, 0.06, 0.30, 2, 12, 0, rng);
    net.connectRandom(a, a, 0.04, -0.20, 1, 5, 1, rng);
    net.finalize();
    return net;
}

StimulusGenerator
llifStim(size_t neurons, uint64_t seed)
{
    StimulusGenerator stim(seed);
    stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), 0.02, 0.8f, 0));
    return stim;
}

class SparseDelivery : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SparseDelivery, LegacySparseAndEventEnginesBitIdentical)
{
    // Three deliveries of the same simulation: the PR 5 every-shard
    // schedule (sparseDelivery off), the masked sparse path, and the
    // event-driven engine. All three must agree spike for spike and
    // ring double for ring double at every thread count.
    const size_t threads = GetParam();
    const size_t n = 120;
    Network netLegacy = llifNet(n, 31);
    Network netSparse = llifNet(n, 31);
    Network netEvent = llifNet(n, 31);

    SimulatorOptions opts;
    opts.threads = threads;
    opts.recordSpikes = true;
    SimulatorOptions legacyOpts = opts;
    legacyOpts.sparseDelivery = false;
    Simulator legacy(netLegacy, llifStim(n, 5), legacyOpts);
    Simulator sparse(netSparse, llifStim(n, 5), opts);

    SessionOptions evOpts;
    evOpts.threads = threads;
    evOpts.recordSpikes = true;
    EventDrivenSimulator event(netEvent, llifStim(n, 5), evOpts);

    for (uint64_t step = 0; step < 600; ++step) {
        legacy.stepOnce();
        sparse.stepOnce();
        event.stepOnce();
        ASSERT_EQ(legacy.lastFired(), sparse.lastFired())
            << "step " << step;
        ASSERT_EQ(legacy.lastFired(), event.lastFired())
            << "step " << step;
        expectRingBitIdentical(legacy.ringBuffer(),
                               sparse.ringBuffer(), step);
    }
    EXPECT_GT(legacy.stats().spikes, 0u) << "network stayed silent";
    EXPECT_EQ(legacy.spikeCounts(), sparse.spikeCounts());
    EXPECT_EQ(legacy.spikeCounts(), event.spikeCounts());
    EXPECT_EQ(legacy.stats().synapseEvents,
              sparse.stats().synapseEvents);
    EXPECT_EQ(legacy.stats().synapseEvents,
              event.SimulationSession::stats().synapseEvents);

    // The sparse path must actually skip work the legacy schedule
    // performs: on a low-rate network most (shard, bucket) streams
    // are empty.
    const PhaseStats &st = sparse.stats();
    EXPECT_EQ(legacy.stats().routerShardsSkipped, 0u);
    EXPECT_GT(st.routerBucketsVisited, 0u);
    if (threads > 1) {
        EXPECT_GT(st.routerShardsSkipped, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, SparseDelivery,
                         ::testing::Values(1, 3, 4),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

TEST(SparseDelivery, BucketsVisitedBoundedByPopulatedStreams)
{
    // One source with exactly two delay buckets: delivery must visit
    // at most fired x populated-bucket streams, never the full
    // (shard x bucket) cross product.
    Network net;
    NeuronParams p = defaultParams(ModelKind::LIF);
    net.addPopulation("pair", p, 200);
    net.addSynapse(0, {1, 150.0f, 1, 0});
    net.addSynapse(0, {2, 150.0f, 7, 0});
    net.finalize();
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 10, 150.0f, 0));

    SimulatorOptions opts;
    opts.threads = 4;
    Simulator sim(net, stim, opts);
    sim.run(400);
    const PhaseStats &st = sim.stats();
    EXPECT_GT(st.spikes, 0u);
    // Neuron 0's two targets live in one shard; every firing visits
    // at most 2 (shard, bucket) streams.
    EXPECT_LE(st.routerBucketsVisited, 2 * st.spikes);
    EXPECT_GT(st.routerShardsSkipped, 0u);
}

} // namespace
} // namespace flexon
