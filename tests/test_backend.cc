/**
 * @file
 * Tests for the back-end code generator (Section VII-B): shift &
 * scale normalization from biological units, model compilation, the
 * compilation report, and the compiled-program self-check across
 * every Table III model.
 */

#include <gtest/gtest.h>

#include "backend/codegen.hh"

namespace flexon {
namespace {

TEST(ShiftScale, MapsRestAndThreshold)
{
    BioParams bio;
    bio.kind = ModelKind::LIF;
    bio.vRestMv = -65.0;
    bio.vThreshMv = -50.0;
    bio.vResetMv = -65.0;
    bio.tauMMs = 20.0;
    bio.dtMs = 0.1;
    const NeuronParams p = normalize(bio);
    EXPECT_NEAR(p.epsM, 0.005, 1e-12);
    // Threshold is implicitly 1.0; check a voltage landmark instead:
    // -50 mV maps to 1.0, -65 mV to 0.0.
    EXPECT_NEAR(weightScale(bio) * (-50.0 - -65.0), 1.0, 1e-12);
    EXPECT_NEAR(weightScale(bio) * (-65.0 - -65.0), 0.0, 1e-12);
}

TEST(ShiftScale, ReversalPotentialsNormalized)
{
    BioParams bio;
    bio.kind = ModelKind::DLIF;
    bio.numSynapseTypes = 2;
    bio.syn[0] = {5.0, 0.0};    // AMPA reversal at 0 mV
    bio.syn[1] = {10.0, -80.0}; // GABA reversal at -80 mV
    const NeuronParams p = normalize(bio);
    // (0 - -65)/15 and (-80 - -65)/15.
    EXPECT_NEAR(p.syn[0].vG, 65.0 / 15.0, 1e-9);
    EXPECT_NEAR(p.syn[1].vG, -1.0, 1e-9);
    EXPECT_NEAR(p.syn[0].epsG, 0.02, 1e-12);
    EXPECT_NEAR(p.syn[1].epsG, 0.01, 1e-12);
}

TEST(ShiftScale, RefractoryStepsFromMilliseconds)
{
    BioParams bio;
    bio.kind = ModelKind::SLIF;
    bio.tRefMs = 2.0;
    bio.dtMs = 0.1;
    EXPECT_EQ(normalize(bio).arSteps, 20u);
}

TEST(ShiftScale, RejectsInconsistentDescriptions)
{
    BioParams bad;
    bad.vThreshMv = bad.vRestMv; // no dynamic range
    EXPECT_DEATH(normalize(bad), "vThresh");

    BioParams reset;
    reset.vResetMv = -70.0; // != vRest
    EXPECT_DEATH(normalize(reset), "vReset");
}

TEST(Codegen, CompileEveryTableIIIModel)
{
    for (ModelKind kind : allModels()) {
        const CompiledNeuron c = compileModel(kind);
        EXPECT_EQ(c.params.features, modelFeatures(kind))
            << modelName(kind);
        EXPECT_GT(c.programLength(), 0u) << modelName(kind);
    }
}

TEST(Codegen, CompiledProgramsMatchReferenceRates)
{
    // The folded program generated for each model must reproduce the
    // reference spike counts within a few percent (Section VI-A's
    // Brian cross-validation, with fixed-point tolerance).
    for (ModelKind kind : allModels()) {
        const CompiledNeuron c = compileModel(kind);
        const double divergence = verifyCompiled(c, 20000, 123);
        EXPECT_LT(divergence, 0.06) << modelName(kind);
    }
}

TEST(Codegen, CompileFromBiologicalUnits)
{
    BioParams bio;
    bio.kind = ModelKind::DLIF;
    const CompiledNeuron c = compile(bio);
    EXPECT_TRUE(c.config.features.has(Feature::COBE));
    EXPECT_TRUE(c.config.features.has(Feature::REV));
    EXPECT_LT(verifyCompiled(c, 10000, 7), 0.06);
}

TEST(Codegen, DescribeListsProgramAndConstants)
{
    const std::string report = describe(compileModel(ModelKind::AdEx));
    EXPECT_NE(report.find("EXD+COBE+REV+EXI+ADT+SBT+AR"),
              std::string::npos);
    EXPECT_NE(report.find("MUL constants:"), std::string::npos);
    EXPECT_NE(report.find("control signals (11"), std::string::npos);
}

TEST(Codegen, CustomModelViaFeatureComposition)
{
    // Discussion (Section VII-A): users can compose features beyond
    // the Table III presets — e.g. a quadratic neuron with linear
    // adaptation and relative refractory.
    NeuronParams p = defaultParams(ModelKind::QIF);
    p.features = FeatureSet{Feature::EXD, Feature::COBE, Feature::REV,
                            Feature::QDI, Feature::AR, Feature::RR};
    p.epsR = 0.05;
    p.vRR = -0.5;
    p.qR = -0.2;
    p.vAR = -0.7;
    p.epsW = 0.005;
    p.b = -0.1;
    const CompiledNeuron c = compile(p);
    EXPECT_GT(c.programLength(),
              compileModel(ModelKind::QIF).programLength());
    EXPECT_LT(verifyCompiled(c, 10000, 11), 0.06);
}

} // namespace
} // namespace flexon
