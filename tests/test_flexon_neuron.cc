/**
 * @file
 * Validation of the baseline Flexon digital neuron against the
 * double-precision reference model (the role Brian plays in Section
 * VI-A), parameterized over every neuron model of Table III.
 *
 * Three complementary checks:
 *  - single-step equivalence under teacher forcing: the reference
 *    state is quantized into the Flexon state every step, so the
 *    comparison isolates one step of fixed-point arithmetic;
 *  - free-running subthreshold trajectories stay close;
 *  - free-running spike rates match within a few percent.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "flexon/neuron.hh"
#include "models/reference_neuron.hh"

namespace flexon {
namespace {

/** Copy (and re-scale) a reference state into a Flexon state. */
FlexonState
quantize(const NeuronState &ref, const FlexonConfig &config)
{
    FlexonState s;
    s.v = Fix::fromDouble(ref.v);
    s.w = Fix::fromDouble(ref.w);
    s.r = Fix::fromDouble(ref.r);
    s.cnt = ref.cnt;
    // Conductance-path variables absorb the epsilon_m pre-scaling
    // (Table V convention), so g_hw = inputScale * g_ref.
    const double scale = config.inputScale.toDouble();
    for (size_t i = 0; i < config.numSynapseTypes; ++i) {
        s.y[i] = Fix::fromDouble(ref.y[i] * scale);
        s.g[i] = Fix::fromDouble(ref.g[i] * scale);
    }
    return s;
}

/** Scale raw per-type reference inputs into the hardware convention. */
std::vector<Fix>
scaleInputs(const std::vector<double> &raw, const FlexonConfig &config,
            const NeuronParams &params)
{
    std::vector<Fix> out(config.numSynapseTypes, Fix::zero());
    if (config.numSynapseTypes == params.numSynapseTypes) {
        for (size_t i = 0; i < raw.size(); ++i)
            out[i] = config.scaleWeight(raw[i]);
    } else {
        // CUB merges all synapse types into one signed input.
        double sum = 0.0;
        for (double w : raw)
            sum += w;
        out[0] = config.scaleWeight(sum);
    }
    return out;
}

/** Per-step tolerance: EXI configs include the fast-exp error. */
double
stepTolerance(const NeuronParams &p)
{
    if (p.features.has(Feature::EXI)) {
        // ~5 % fast-exp error on the worst-case (near-firing) scaled
        // exponential contribution.
        const double worst = std::exp((p.vFiring - 1.0) / p.deltaT);
        return 0.06 * p.epsM * p.deltaT * worst + 1e-4;
    }
    return 1e-4;
}

class FlexonVsReference : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(FlexonVsReference, SingleStepTeacherForced)
{
    const ModelKind kind = GetParam();
    const NeuronParams p = defaultParams(kind);
    const FlexonConfig config = FlexonConfig::fromParams(p);
    ReferenceNeuron ref(p);
    FlexonNeuron hw(config);

    Rng rng(1000 + static_cast<uint64_t>(kind));
    const double tol = stepTolerance(p);
    int compared = 0;

    for (int t = 0; t < 4000; ++t) {
        // Random per-type input: excitatory bursts, some inhibition.
        std::vector<double> raw(p.numSynapseTypes, 0.0);
        for (size_t i = 0; i < p.numSynapseTypes; ++i) {
            if (rng.bernoulli(0.10))
                raw[i] = (i == 1 ? -0.3 : 0.5) * rng.uniform();
        }

        // Force the hardware state to the quantized reference state.
        hw.state() = quantize(ref.state(), config);

        const bool ref_fired = ref.step(raw);
        const bool hw_fired =
            hw.step(std::span<const Fix>(scaleInputs(raw, config, p)));

        // Near the threshold a sub-tolerance difference may flip the
        // spike decision; skip only that ambiguous band.
        const double margin =
            std::abs(ref.preResetV() - p.threshold());
        if (margin < 4.0 * tol)
            continue;

        ASSERT_EQ(ref_fired, hw_fired)
            << modelName(kind) << " step " << t;
        if (!ref_fired) {
            ASSERT_NEAR(hw.state().v.toDouble(), ref.state().v, tol)
                << modelName(kind) << " step " << t;
        }
        ++compared;
    }
    EXPECT_GT(compared, 3000);
}

TEST_P(FlexonVsReference, SubthresholdTrajectoryStaysClose)
{
    const ModelKind kind = GetParam();
    const NeuronParams p = defaultParams(kind);
    const FlexonConfig config = FlexonConfig::fromParams(p);
    ReferenceNeuron ref(p);
    FlexonNeuron hw(config);

    Rng rng(2000 + static_cast<uint64_t>(kind));
    double max_err = 0.0;
    for (int t = 0; t < 1000; ++t) {
        std::vector<double> raw(p.numSynapseTypes, 0.0);
        // QDI is bistable around v_c: keep the drive far below the
        // separatrix; other models tolerate a stronger kick.
        const double amp = p.features.has(Feature::QDI) ? 0.01 : 0.1;
        if (rng.bernoulli(0.05))
            raw[0] = amp * rng.uniform();
        const bool ref_fired = ref.step(raw);
        const bool hw_fired =
            hw.step(std::span<const Fix>(scaleInputs(raw, config, p)));
        ASSERT_FALSE(ref_fired);
        ASSERT_FALSE(hw_fired);
        max_err = std::max(
            max_err, std::abs(hw.state().v.toDouble() - ref.state().v));
    }
    // Accumulated fixed-point drift over 1000 subthreshold steps.
    EXPECT_LT(max_err, 1000.0 * stepTolerance(p));
    EXPECT_LT(max_err, 0.05);
}

TEST_P(FlexonVsReference, FreeRunningSpikeRateMatches)
{
    const ModelKind kind = GetParam();
    const NeuronParams p = defaultParams(kind);
    const FlexonConfig config = FlexonConfig::fromParams(p);
    ReferenceNeuron ref(p);
    FlexonNeuron hw(config);

    Rng rng(3000 + static_cast<uint64_t>(kind));
    int ref_spikes = 0, hw_spikes = 0;
    const int steps = 20000;
    for (int t = 0; t < steps; ++t) {
        std::vector<double> raw(p.numSynapseTypes, 0.0);
        // CUB injects instantaneous current (needs suprathreshold
        // bursts); conductance inputs integrate over time.
        const bool cub = p.features.has(Feature::CUB);
        if (rng.bernoulli(0.2))
            raw[0] = cub ? rng.uniform(3.0, 7.0)
                         : rng.uniform(0.3, 0.8);
        ref_spikes += ref.step(raw);
        hw_spikes +=
            hw.step(std::span<const Fix>(scaleInputs(raw, config, p)));
    }
    ASSERT_GT(ref_spikes, 20)
        << modelName(kind) << ": drive too weak for a rate test";
    EXPECT_NEAR(hw_spikes, ref_spikes, 0.05 * ref_spikes + 3.0)
        << modelName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, FlexonVsReference, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelKind> &info) {
        return std::string(modelName(info.param));
    });

TEST(FlexonConfig, RequiresMembraneDecay)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    p.features = FeatureSet{Feature::CUB};
    EXPECT_DEATH(FlexonConfig::fromParams(p), "membrane-decay");
}

TEST(FlexonConfig, CubMergesSynapseTypes)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    p.numSynapseTypes = 2;
    const FlexonConfig c = FlexonConfig::fromParams(p);
    EXPECT_EQ(c.numSynapseTypes, 1u);
    const FlexonConfig d =
        FlexonConfig::fromParams(defaultParams(ModelKind::DLIF));
    EXPECT_EQ(d.numSynapseTypes, 2u);
}

TEST(FlexonConfig, InputScaleConvention)
{
    const FlexonConfig lif =
        FlexonConfig::fromParams(defaultParams(ModelKind::LIF));
    EXPECT_NEAR(lif.inputScale.toDouble(),
                defaultParams(ModelKind::LIF).epsM, 1e-6);
    const FlexonConfig llif =
        FlexonConfig::fromParams(defaultParams(ModelKind::LLIF));
    EXPECT_DOUBLE_EQ(llif.inputScale.toDouble(), 1.0);
}

TEST(FlexonConfig, StateBitsAccounting)
{
    FlexonConfig lif =
        FlexonConfig::fromParams(defaultParams(ModelKind::LIF));
    EXPECT_EQ(stateBits(lif), 32u); // v only
    lif.truncateStorage = true;
    EXPECT_EQ(stateBits(lif), 22u); // the paper's 31.3 % reduction

    const FlexonConfig dlif =
        FlexonConfig::fromParams(defaultParams(ModelKind::DLIF));
    // v + 2 conductances + AR counter.
    EXPECT_EQ(stateBits(dlif), 32u + 64u + 8u);

    const FlexonConfig adex =
        FlexonConfig::fromParams(defaultParams(ModelKind::AdExCOBA));
    // v + 2g + 2y + w + cnt.
    EXPECT_EQ(stateBits(adex), 32u + 64u + 64u + 32u + 8u);
}

TEST(FlexonNeuron, TruncationKeepsLifBehaviour)
{
    // With storage truncation on, a hard-threshold neuron still fires
    // at the same rate (v stays in [0, 1) between steps).
    NeuronParams p = defaultParams(ModelKind::SLIF);
    FlexonConfig plain = FlexonConfig::fromParams(p);
    FlexonConfig trunc = plain;
    trunc.truncateStorage = true;
    FlexonNeuron a(plain), b(trunc);
    Rng rng(77);
    int sa = 0, sb = 0;
    for (int t = 0; t < 10000; ++t) {
        const Fix in = rng.bernoulli(0.5)
                           ? plain.scaleWeight(4.0)
                           : Fix::zero();
        sa += a.step(in);
        sb += b.step(in);
    }
    EXPECT_GT(sa, 10);
    EXPECT_NEAR(sb, sa, 0.02 * sa + 2.0);
}

} // namespace
} // namespace flexon
