/**
 * @file
 * Tests for the Euler and RKF45 solvers against closed-form solutions,
 * and for the adaptive step controller's behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solvers/euler.hh"
#include "solvers/rkf45.hh"
#include "solvers/solver.hh"

namespace flexon {
namespace {

/** y' = -k y, y(0) = 1  =>  y(t) = exp(-k t). */
OdeRhs
decayRhs(double k)
{
    return [k](double, std::span<const double> y,
               std::span<double> dydt) { dydt[0] = -k * y[0]; };
}

TEST(Euler, SingleStepMatchesFirstOrder)
{
    std::vector<double> y{1.0}, scratch(1);
    auto rhs = decayRhs(2.0);
    eulerStep(rhs, 0.0, 0.1, y, scratch);
    EXPECT_NEAR(y[0], 1.0 - 0.2, 1e-12);
}

TEST(Euler, ConvergesWithStepSize)
{
    auto rhs = decayRhs(1.0);
    auto integrate = [&](int n) {
        std::vector<double> y{1.0}, scratch(1);
        const double h = 1.0 / n;
        for (int i = 0; i < n; ++i)
            eulerStep(rhs, i * h, h, y, scratch);
        return y[0];
    };
    const double exact = std::exp(-1.0);
    const double err10 = std::abs(integrate(10) - exact);
    const double err100 = std::abs(integrate(100) - exact);
    // First-order convergence: 10x smaller step -> ~10x smaller error.
    EXPECT_LT(err100, err10 / 5.0);
    EXPECT_NEAR(integrate(1000), exact, 1e-3);
}

TEST(Rkf45, SingleStepIsFifthOrderAccurate)
{
    Rkf45Workspace ws(1);
    std::vector<double> y{1.0};
    auto rhs = decayRhs(1.0);
    rkf45SingleStep(rhs, 0.0, 0.1, y, ws);
    // Local truncation error of the 5th-order solution is O(h^6).
    EXPECT_NEAR(y[0], std::exp(-0.1), 1e-8);
}

TEST(Rkf45, IntegrateExponentialDecay)
{
    Rkf45Workspace ws(1);
    std::vector<double> y{1.0};
    auto rhs = decayRhs(3.0);
    auto result = rkf45Integrate(rhs, 0.0, 2.0, y, ws);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(y[0], std::exp(-6.0), 1e-6);
    EXPECT_GT(result.rhsEvaluations, 0u);
}

TEST(Rkf45, IntegrateHarmonicOscillator)
{
    // y'' = -y  as a 2d system; energy must be conserved.
    OdeRhs rhs = [](double, std::span<const double> y,
                    std::span<double> dydt) {
        dydt[0] = y[1];
        dydt[1] = -y[0];
    };
    Rkf45Workspace ws(2);
    std::vector<double> y{1.0, 0.0};
    auto result = rkf45Integrate(rhs, 0.0, 2.0 * M_PI, y, ws);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(y[0], 1.0, 1e-4);
    EXPECT_NEAR(y[1], 0.0, 1e-4);
}

TEST(Rkf45, TighterToleranceCostsMoreEvaluations)
{
    auto run = [](double tol) {
        Rkf45Workspace ws(1);
        std::vector<double> y{1.0};
        OdeRhs rhs = [](double t, std::span<const double> y,
                        std::span<double> dydt) {
            dydt[0] = std::cos(10.0 * t) * y[0];
        };
        Rkf45Options opts;
        opts.tolerance = tol;
        auto result = rkf45Integrate(rhs, 0.0, 5.0, y, ws, opts);
        EXPECT_TRUE(result.converged);
        return result.rhsEvaluations;
    };
    EXPECT_GT(run(1e-11), run(1e-5));
}

TEST(Rkf45, RespectsMaxSteps)
{
    Rkf45Workspace ws(1);
    std::vector<double> y{1.0};
    auto rhs = decayRhs(1.0);
    Rkf45Options opts;
    opts.maxSteps = 1;
    opts.tolerance = 1e-16;
    opts.minStep = 1e-12;
    auto result = rkf45Integrate(rhs, 0.0, 100.0, y, ws, opts);
    EXPECT_FALSE(result.converged);
}

TEST(Rkf45, WorkspaceAccessors)
{
    Rkf45Workspace ws(3);
    EXPECT_EQ(ws.dim(), 3u);
    EXPECT_EQ(ws.k(0).size(), 3u);
    EXPECT_EQ(ws.k(5).size(), 3u);
    EXPECT_EQ(ws.ytmp().size(), 3u);
    EXPECT_EQ(ws.yerr().size(), 3u);
}

TEST(Solver, Names)
{
    EXPECT_STREQ(solverName(SolverKind::Euler), "Euler");
    EXPECT_STREQ(solverName(SolverKind::RKF45), "RKF45");
}

} // namespace
} // namespace flexon
