/**
 * @file
 * Tests for the three-phase SNN simulation engine: stimulus
 * statistics, delayed spike propagation, backend agreement, phase
 * timing plumbing, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include <cmath>

#include "common/stats.hh"
#include "features/model_table.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(Stimulus, PoissonRateStatistics)
{
    StimulusGenerator gen(3);
    gen.addSource(StimulusSource::poisson(0, 100, 0.05, 0.5f, 0));
    uint64_t total = 0;
    const int steps = 10000;
    for (int t = 0; t < steps; ++t)
        total += gen.generate(t).size();
    // E = 100 * 0.05 * steps = 50000; binomial sd ~218.
    EXPECT_NEAR(static_cast<double>(total), 50000.0, 1200.0);
    EXPECT_NEAR(gen.expectedSpikesPerStep(), 5.0, 1e-12);
}

TEST(Stimulus, OrnsteinUhlenbeckStatistics)
{
    // Stationary OU: mean ~ ouMean, sd ~ sigma (before the
    // non-negativity clamp, which barely binds at mean >> sigma).
    StimulusGenerator gen(5);
    gen.addSource(StimulusSource::ou(0, 1, 2.0, 0.3, 50.0, 0));
    Summary s;
    for (int t = 0; t < 60000; ++t) {
        const auto &spikes = gen.generate(t);
        ASSERT_EQ(spikes.size(), 1u); // one analog input per step
        if (t > 1000)
            s.add(spikes[0].weight);
    }
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 0.3, 0.05);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Stimulus, OrnsteinUhlenbeckIsTemporallyCorrelated)
{
    // Autocorrelation at lag tau should be ~ 1/e; at lag 10*tau ~ 0.
    StimulusGenerator gen(9);
    const double tau = 40.0;
    gen.addSource(StimulusSource::ou(0, 1, 1.0, 0.2, tau, 0));
    std::vector<double> x;
    for (int t = 0; t < 60000; ++t)
        x.push_back(gen.generate(t)[0].weight);
    auto autocorr = [&](int lag) {
        Summary all;
        for (double v : x)
            all.add(v);
        double num = 0.0;
        for (size_t i = 0; i + lag < x.size(); ++i)
            num += (x[i] - all.mean()) * (x[i + lag] - all.mean());
        return num / (static_cast<double>(x.size() - lag) *
                      all.variance());
    };
    EXPECT_NEAR(autocorr(static_cast<int>(tau)), std::exp(-1.0),
                0.08);
    EXPECT_NEAR(autocorr(static_cast<int>(10 * tau)), 0.0, 0.1);
}

TEST(Stimulus, PatternFiresOnPeriod)
{
    StimulusGenerator gen(3);
    gen.addSource(StimulusSource::pattern(10, 4, 25, 1.0f, 0));
    EXPECT_EQ(gen.generate(0).size(), 4u);
    EXPECT_EQ(gen.generate(1).size(), 0u);
    EXPECT_EQ(gen.generate(24).size(), 0u);
    EXPECT_EQ(gen.generate(25).size(), 4u);
    const auto &spikes = gen.generate(50);
    ASSERT_EQ(spikes.size(), 4u);
    EXPECT_EQ(spikes[0].target, 10u);
    EXPECT_EQ(spikes[3].target, 13u);
}

/** Two LIF neurons: 0 drives 1 through a synapse with delay d. */
Network
chainNetwork(uint8_t delay, float weight)
{
    Network net;
    NeuronParams p = defaultParams(ModelKind::LIF);
    net.addPopulation("chain", p, 2);
    net.addSynapse(0, {1, weight, delay, 0});
    net.finalize();
    return net;
}

TEST(Simulator, SpikePropagatesAfterExactDelay)
{
    // CUB injects the weight as instantaneous current scaled by
    // epsilon_m (Equation 2): a single-impulse weight of 150 yields
    // dv = 1.5 and fires the LIF neuron in the same step.
    for (uint8_t delay : {1, 3, 7}) {
        Network net = chainNetwork(delay, 150.0f);
        StimulusGenerator stim(1);
        stim.addSource(StimulusSource::pattern(0, 1, 40, 150.0f, 0));

        SimulatorOptions opts;
        opts.recordSpikes = true;
        Simulator sim(net, stim, opts);
        sim.run(200);

        // Neuron 1's earliest possible spike is neuron 0's spike
        // plus exactly the synaptic delay.
        std::vector<uint64_t> t0, t1;
        for (const SpikeEvent &e : sim.spikeEvents())
            (e.neuron == 0 ? t0 : t1).push_back(e.step);
        ASSERT_FALSE(t0.empty());
        ASSERT_FALSE(t1.empty()) << "delay " << int(delay);
        // The input arrives at t0.front() + delay; the CUB current
        // applies that same step, so neuron 1's first possible spike
        // is at least that step.
        EXPECT_GE(t1.front(), t0.front() + delay);
    }
}

TEST(Simulator, WeightBelowThresholdNeverPropagates)
{
    // dv = 0.25 per kick; the 40-step decay keeps the steady peak
    // well below threshold.
    Network net = chainNetwork(1, 25.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 150.0f, 0));
    SimulatorOptions opts;
    opts.recordSpikes = true;
    Simulator sim(net, stim, opts);
    sim.run(400);
    for (const SpikeEvent &e : sim.spikeEvents())
        EXPECT_EQ(e.neuron, 0u);
}

TEST(Simulator, StatsCountersConsistent)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 150.0f, 0));
    Simulator sim(net, stim);
    sim.run(300);
    const PhaseStats &st = sim.stats();
    EXPECT_EQ(st.steps, 300u);
    EXPECT_GT(st.spikes, 0u);
    EXPECT_EQ(st.spikes,
              sim.spikeCounts()[0] + sim.spikeCounts()[1]);
    // Every neuron-0 spike crosses the single synapse.
    EXPECT_EQ(st.synapseEvents, sim.spikeCounts()[0]);
    EXPECT_GT(st.neuronSec, 0.0);
    EXPECT_GT(st.totalSec(), 0.0);
    EXPECT_NEAR(sim.meanRate(),
                static_cast<double>(st.spikes) / (300.0 * 2.0), 1e-12);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run = [] {
        Network net;
        NeuronParams p = defaultParams(ModelKind::DLIF);
        const size_t a = net.addPopulation("a", p, 50);
        Rng rng(31);
        net.connectRandom(a, a, 0.1, 0.05, 1, 5, 0, rng);
        net.finalize();
        StimulusGenerator stim(9);
        stim.addSource(StimulusSource::poisson(0, 50, 0.05, 0.4f, 0));
        Simulator sim(net, stim);
        sim.run(500);
        return sim.stats().spikes;
    };
    EXPECT_EQ(run(), run());
}

TEST(Simulator, ResetRestoresInitialConditions)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 150.0f, 0));
    Simulator sim(net, stim);
    sim.run(250);
    const uint64_t first = sim.stats().spikes;
    ASSERT_GT(first, 0u);
    sim.reset();
    EXPECT_EQ(sim.stats().spikes, 0u);
    EXPECT_EQ(sim.currentStep(), 0u);
    sim.run(250);
    EXPECT_EQ(sim.stats().spikes, first);
}

/** All three backends must see identical spike totals on a LIF net
 * (fixed-point error is far below the drive margin here). */
TEST(Simulator, BackendsAgreeOnStronglyDrivenLif)
{
    for (BackendKind kind :
         {BackendKind::Reference, BackendKind::Flexon,
          BackendKind::Folded}) {
        Network net = chainNetwork(2, 300.0f);
        StimulusGenerator stim(1);
        stim.addSource(StimulusSource::pattern(0, 1, 50, 150.0f, 0));
        SimulatorOptions opts;
        opts.backend = kind;
        Simulator sim(net, stim, opts);
        sim.run(500);
        EXPECT_EQ(sim.spikeCounts()[0], 10u) << backendName(kind);
        EXPECT_EQ(sim.spikeCounts()[1], 10u) << backendName(kind);
    }
}

TEST(Simulator, HardwareBackendsReportModelTime)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    Simulator sim(net, stim, opts);
    sim.run(10);
    EXPECT_GT(sim.stats().modelNeuronSec, 0.0);

    SimulatorOptions ref_opts;
    Simulator ref_sim(net, stim, ref_opts);
    ref_sim.run(10);
    EXPECT_EQ(ref_sim.stats().modelNeuronSec, 0.0);
}

TEST(Simulator, FlexonAndFoldedBackendsBitIdenticalOnNetwork)
{
    auto spikes = [](BackendKind kind) {
        Network net;
        NeuronParams p = defaultParams(ModelKind::Izhikevich);
        const size_t a = net.addPopulation("a", p, 40);
        Rng rng(41);
        net.connectRandom(a, a, 0.15, 0.5, 1, 6, 0, rng);
        net.finalize();
        StimulusGenerator stim(17);
        stim.addSource(StimulusSource::poisson(0, 40, 0.08, 2.0f, 0));
        SimulatorOptions opts;
        opts.backend = kind;
        opts.recordSpikes = true;
        Simulator sim(net, stim, opts);
        sim.run(2000);
        return sim.spikeEvents();
    };
    const auto a = spikes(BackendKind::Flexon);
    const auto b = spikes(BackendKind::Folded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].step, b[i].step);
        EXPECT_EQ(a[i].neuron, b[i].neuron);
    }
}

TEST(Simulator, ProbesRecordMembraneTraces)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 90.0f, 0));
    SimulatorOptions opts;
    opts.probes = {0, 1};
    Simulator sim(net, stim, opts);
    sim.run(100);

    const auto &v0 = sim.probeTrace(0);
    const auto &v1 = sim.probeTrace(1);
    ASSERT_EQ(v0.size(), 100u);
    ASSERT_EQ(v1.size(), 100u);
    // Neuron 0 receives a 0.9 kick at t=0 and decays exponentially;
    // neuron 1 stays silent (the kick is subthreshold, no spikes).
    EXPECT_NEAR(v0[0], 0.9, 1e-9);
    EXPECT_LT(v0[30], v0[1]);
    for (double v : v1)
        EXPECT_DOUBLE_EQ(v, 0.0);

    sim.reset();
    EXPECT_TRUE(sim.probeTrace(0).empty());
}

TEST(Simulator, ProbesWorkOnHardwareBackends)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 90.0f, 0));
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    opts.probes = {0};
    Simulator sim(net, stim, opts);
    sim.run(50);
    EXPECT_NEAR(sim.probeTrace(0)[0], 0.9, 1e-4);
}

TEST(Simulator, HeterogeneousModelMixOnHardwareBackends)
{
    // One network mixing four Table III models: the arrays must
    // configure per-population datapaths/programs and stay
    // bit-identical to each other.
    Network net;
    net.addPopulation("lif", defaultParams(ModelKind::LIF), 10);
    net.addPopulation("dlif", defaultParams(ModelKind::DLIF), 10);
    net.addPopulation("izh", defaultParams(ModelKind::Izhikevich),
                      10);
    net.addPopulation("gsfa",
                      defaultParams(ModelKind::IFCondExpGsfaGrr), 10);
    Rng rng(3);
    for (size_t src = 0; src < 4; ++src)
        for (size_t dst = 0; dst < 4; ++dst)
            net.connectRandom(src, dst, 0.1, 0.4, 1, 4, 0, rng);
    net.finalize();

    auto events = [&](BackendKind kind) {
        StimulusGenerator stim(5);
        stim.addSource(StimulusSource::poisson(0, 40, 0.05, 1.5f, 0));
        SimulatorOptions opts;
        opts.backend = kind;
        opts.recordSpikes = true;
        Simulator sim(net, stim, opts);
        sim.run(1500);
        return sim.spikeEvents();
    };
    const auto flexon = events(BackendKind::Flexon);
    const auto folded = events(BackendKind::Folded);
    const auto reference = events(BackendKind::Reference);

    ASSERT_EQ(flexon.size(), folded.size());
    for (size_t i = 0; i < flexon.size(); ++i) {
        EXPECT_EQ(flexon[i].step, folded[i].step);
        EXPECT_EQ(flexon[i].neuron, folded[i].neuron);
    }
    EXPECT_GT(flexon.size(), 0u);
    // The reference agrees within a few percent on totals.
    EXPECT_NEAR(static_cast<double>(reference.size()),
                static_cast<double>(flexon.size()),
                0.1 * static_cast<double>(reference.size()) + 5.0);
}

TEST(Simulator, StatsDumpHasGem5Shape)
{
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 40, 150.0f, 0));
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    Simulator sim(net, stim, opts);
    sim.run(200);

    std::ostringstream oss;
    sim.printStats(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("sim.steps"), std::string::npos);
    EXPECT_NE(out.find("sim.spikes"), std::string::npos);
    EXPECT_NE(out.find("phase.neuron_share"), std::string::npos);
    EXPECT_NE(out.find("hw.model_neuron_sec"), std::string::npos);
    EXPECT_NE(out.find("# output spikes fired"), std::string::npos);
    EXPECT_NE(out.find("engine.routing_table_bytes"),
              std::string::npos);
    EXPECT_NE(out.find("engine.ring_dense_clears"), std::string::npos);
    EXPECT_NE(out.find("engine.ring_sparse_clears"),
              std::string::npos);
    EXPECT_NE(out.find("engine.ring_cells_cleared"),
              std::string::npos);
    EXPECT_NE(out.find("200"), std::string::npos);
}

TEST(Simulator, ResetClearsLastFired)
{
    // A reset right after a step with spikes must not leave stale
    // fired flags behind: a plasticity engine consulting lastFired()
    // after reset() would otherwise apply phantom updates.
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 1, 150.0f, 0));
    Simulator sim(net, stim);
    uint64_t steps = 0;
    while (sim.stats().spikes == 0 && steps < 100) {
        sim.stepOnce();
        ++steps;
    }
    ASSERT_GT(sim.stats().spikes, 0u);
    ASSERT_NE(std::count(sim.lastFired().begin(),
                         sim.lastFired().end(), uint8_t{1}),
              0);
    sim.reset();
    EXPECT_TRUE(sim.lastFired().empty());
    EXPECT_EQ(sim.router().events(), 0u);
    // And stats survive the reset with the table footprint intact.
    EXPECT_GT(sim.stats().routingTableBytes, 0u);
    EXPECT_EQ(sim.stats().ringDenseClears +
                  sim.stats().ringSparseClears,
              0u);
}

TEST(Simulator, RunReservesSpikeEventStorage)
{
    // run() pre-sizes the spike-event log from the step count and
    // the observed rate, so recording does not reallocate per spike.
    Network net = chainNetwork(1, 150.0f);
    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 2, 150.0f, 0));
    SimulatorOptions opts;
    opts.recordSpikes = true;
    opts.probes = {0};
    Simulator sim(net, stim, opts);
    sim.run(200);
    EXPECT_GT(sim.spikeEvents().size(), 0u);
    EXPECT_GE(sim.spikeEvents().capacity(), sim.spikeEvents().size());
    EXPECT_EQ(sim.probeTrace(0).size(), 200u);
    EXPECT_GE(sim.probeTrace(0).capacity(), 200u);
}

} // namespace
} // namespace flexon
