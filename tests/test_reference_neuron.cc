/**
 * @file
 * Behavioural tests for the double-precision reference neuron: each
 * biologically common feature is checked against closed-form
 * predictions or qualitative neuroscience behaviour (Figures 4-8 of
 * the paper), plus the ODE-mode consistency checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "models/ode_neuron.hh"
#include "models/population.hh"
#include "models/reference_neuron.hh"

namespace flexon {
namespace {

/** Step a neuron `n` times with a constant single-type input. */
template <typename Neuron>
int
run(Neuron &neuron, double input, int steps,
    std::vector<int> *spike_times = nullptr)
{
    int count = 0;
    for (int t = 0; t < steps; ++t) {
        if (neuron.step(input)) {
            ++count;
            if (spike_times)
                spike_times->push_back(t);
        }
    }
    return count;
}

TEST(ReferenceLif, ExponentialDecayMatchesClosedForm)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    ReferenceNeuron n(p);
    n.state().v = 0.8;
    for (int t = 0; t < 100; ++t)
        n.step(0.0);
    // v(t) = v(0) * (1 - epsM)^t for the discrete LIF with no input.
    EXPECT_NEAR(n.state().v, 0.8 * std::pow(1.0 - p.epsM, 100), 1e-12);
}

TEST(ReferenceLif, SteadyStateEqualsInput)
{
    // v* = I is the fixed point of v' = v + epsM*(-v + I).
    ReferenceNeuron n(defaultParams(ModelKind::LIF));
    run(n, 0.7, 3000);
    EXPECT_NEAR(n.state().v, 0.7, 1e-9);
}

TEST(ReferenceLif, FiresIffInputExceedsThreshold)
{
    ReferenceNeuron sub(defaultParams(ModelKind::LIF));
    EXPECT_EQ(run(sub, 0.99, 5000), 0);
    ReferenceNeuron supra(defaultParams(ModelKind::LIF));
    EXPECT_GT(run(supra, 1.2, 5000), 0);
}

TEST(ReferenceLif, InterSpikeIntervalMatchesAnalytic)
{
    // From v=0, with constant I the discrete LIF crosses 1.0 after
    // n steps where v_n = I * (1 - (1-epsM)^n) > 1.
    NeuronParams p = defaultParams(ModelKind::LIF);
    const double I = 1.5;
    const int analytic = static_cast<int>(std::ceil(
        std::log(1.0 - 1.0 / I) / std::log(1.0 - p.epsM)));
    std::vector<int> times;
    ReferenceNeuron n(p);
    run(n, I, 2000, &times);
    ASSERT_GE(times.size(), 2u);
    const int isi = times[1] - times[0];
    EXPECT_NEAR(isi, analytic, 1.0);
}

TEST(ReferenceLlif, LinearDecaySlope)
{
    NeuronParams p = defaultParams(ModelKind::LLIF);
    ReferenceNeuron n(p);
    n.state().v = 0.5;
    n.step(0.0);
    EXPECT_NEAR(n.state().v, 0.5 - p.vLeak, 1e-12);
    n.step(0.0);
    EXPECT_NEAR(n.state().v, 0.5 - 2.0 * p.vLeak, 1e-12);
}

TEST(ReferenceLlif, DecayFloorsAtRest)
{
    ReferenceNeuron n(defaultParams(ModelKind::LLIF));
    n.state().v = 0.003;
    for (int t = 0; t < 10; ++t)
        n.step(0.0);
    EXPECT_DOUBLE_EQ(n.state().v, 0.0);
}

TEST(ReferenceSlif, AbsoluteRefractoryBlocksInput)
{
    NeuronParams p = defaultParams(ModelKind::SLIF);
    p.arSteps = 50;
    ReferenceNeuron n(p);
    std::vector<int> times;
    run(n, 2.0, 500, &times);
    ASSERT_GE(times.size(), 2u);
    // With I=2 the unblocked neuron fires every few steps; AR forces
    // the gap to exceed the refractory length.
    for (size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i] - times[i - 1], 50);
}

TEST(ReferenceCobe, ImpulseResponseDecaysExponentially)
{
    NeuronParams p = defaultParams(ModelKind::DSRM0);
    p.arSteps = 20;
    ReferenceNeuron n(p);
    n.step(0.5); // one impulse
    const double g0 = n.state().g[0];
    EXPECT_NEAR(g0, 0.5, 1e-12);
    for (int t = 0; t < 10; ++t)
        n.step(0.0);
    EXPECT_NEAR(n.state().g[0],
                0.5 * std::pow(1.0 - p.syn[0].epsG, 10), 1e-12);
}

TEST(ReferenceCoba, AlphaKernelRisesThenFalls)
{
    // The alpha function g(t) ~ t*exp(-t/tau) peaks near t = tau.
    NeuronParams p = defaultParams(ModelKind::IFPscAlpha);
    ReferenceNeuron n(p);
    n.step(0.5);
    double peak = 0.0;
    int peak_t = 0;
    for (int t = 1; t < 300; ++t) {
        n.step(0.0);
        if (n.state().g[0] > peak) {
            peak = n.state().g[0];
            peak_t = t;
        }
    }
    const int tau_steps = static_cast<int>(1.0 / p.syn[0].epsG);
    EXPECT_GT(peak, 0.0);
    EXPECT_NEAR(peak_t, tau_steps, tau_steps / 4.0);
    // And it decays well below the peak afterwards.
    EXPECT_LT(n.state().g[0], peak / 2.0);
}

TEST(ReferenceRev, ContributionShrinksNearReversal)
{
    // With REV, the same conductance moves v less when v approaches
    // the reversal voltage v_g (Equation 4).
    NeuronParams p = defaultParams(ModelKind::DLIF);
    ReferenceNeuron low(p), high(p);
    low.state().v = 0.1;
    high.state().v = 0.9;
    low.step(0.5);
    high.step(0.5);
    const double dv_low = low.state().v - 0.1 * (1.0 - p.epsM);
    const double dv_high = high.state().v - 0.9 * (1.0 - p.epsM);
    EXPECT_GT(dv_low, dv_high);
    EXPECT_GT(dv_high, 0.0); // still below the excitatory reversal
}

TEST(ReferenceQdi, BistableAroundCriticalVoltage)
{
    NeuronParams p = defaultParams(ModelKind::QIF);
    // Below v_c with no input: decays toward rest, never fires.
    ReferenceNeuron below(p);
    below.state().v = p.vCrit - 0.1;
    EXPECT_EQ(run(below, 0.0, 5000), 0);
    EXPECT_LT(below.state().v, 0.01);
    // Above v_c: the quadratic initiation drives a spike upswing.
    ReferenceNeuron above(p);
    above.state().v = p.vCrit + 0.1;
    EXPECT_EQ(run(above, 0.0, 5000), 1);
}

TEST(ReferenceExi, RunawayAboveRheobase)
{
    NeuronParams p = defaultParams(ModelKind::EIF);
    ReferenceNeuron low(p);
    low.state().v = 0.5;
    EXPECT_EQ(run(low, 0.0, 5000), 0);
    // The EXI upswing only dominates the leak close to the firing
    // voltage (rheobase ~1.39 for deltaT = 0.2): start above it.
    ReferenceNeuron high(p);
    high.state().v = 1.45;
    EXPECT_EQ(run(high, 0.0, 5000), 1);
}

TEST(ReferenceAdt, SpikeFrequencyAdaptation)
{
    // Izhikevich (with ADT) under constant drive: inter-spike
    // intervals grow as the adaptation current builds up.
    NeuronParams p = defaultParams(ModelKind::Izhikevich);
    ReferenceNeuron n(p);
    std::vector<int> times;
    run(n, 0.04, 20000, &times);
    ASSERT_GE(times.size(), 4u) << "expected sustained firing";
    const int first_isi = times[1] - times[0];
    const int last_isi = times.back() - times[times.size() - 2];
    EXPECT_GT(last_isi, first_isi);
}

TEST(ReferenceAdt, AdaptationCurrentJumpsOnSpike)
{
    NeuronParams p = defaultParams(ModelKind::Izhikevich);
    ReferenceNeuron n(p);
    double w_before = n.state().w;
    int guard = 0;
    while (!n.step(0.05) && ++guard < 20000)
        w_before = n.state().w;
    ASSERT_LT(guard, 20000) << "neuron never fired";
    EXPECT_NEAR(n.state().w, (1.0 - p.epsW) * w_before * 1.0 - p.b,
                std::abs(w_before) * p.epsW + 1e-9);
    EXPECT_LT(n.state().w, w_before);
}

TEST(ReferenceSbt, CouplingTracksMembrane)
{
    // With the AdEx defaults (a < 0), holding v above v_w builds a
    // negative (opposing) w: the damped oscillation of Figure 7.
    NeuronParams p = defaultParams(ModelKind::AdEx);
    ASSERT_LT(p.a, 0.0);
    ReferenceNeuron n(p);
    n.state().v = p.vW + 0.3;
    n.step(0.0);
    EXPECT_LT(n.state().w, 0.0);

    // And a positive coupling constant does the opposite.
    NeuronParams q = p;
    q.a = -p.a;
    ReferenceNeuron m(q);
    m.state().v = q.vW + 0.3;
    m.step(0.0);
    EXPECT_GT(m.state().w, 0.0);
}

TEST(ReferenceRr, RelativeRefractorySuppressesFiring)
{
    NeuronParams with_rr = defaultParams(ModelKind::IFCondExpGsfaGrr);
    NeuronParams no_rr = with_rr;
    no_rr.features = modelFeatures(ModelKind::DLIF);
    ReferenceNeuron a(with_rr), b(no_rr);
    const int spikes_rr = run(a, 0.06, 20000);
    const int spikes_plain = run(b, 0.06, 20000);
    EXPECT_GT(spikes_plain, 0);
    EXPECT_LT(spikes_rr, spikes_plain);
}

TEST(ReferenceRr, RefractoryConductanceJumpsOnSpike)
{
    NeuronParams p = defaultParams(ModelKind::IFCondExpGsfaGrr);
    ReferenceNeuron n(p);
    int guard = 0;
    while (!n.step(0.08) && ++guard < 20000) {}
    ASSERT_LT(guard, 20000);
    // q_r < 0, so r jumps positive on fire (strong negative current).
    EXPECT_GT(n.state().r, 0.0);
    EXPECT_GT(n.state().w, 0.0);
}

TEST(OdeNeuron, EulerMatchesDiscreteLifExactly)
{
    // For the baseline LIF the one-step Euler integration of the
    // continuous form is algebraically identical to Equation 2.
    NeuronParams p = defaultParams(ModelKind::LIF);
    ReferenceNeuron d(p);
    OdeNeuron o(p, SolverKind::Euler);
    Rng rng(5);
    for (int t = 0; t < 2000; ++t) {
        const double in = rng.bernoulli(0.05) ? 0.4 : 0.0;
        const bool fd = d.step(in);
        const bool fo = o.step(in);
        ASSERT_EQ(fd, fo) << "step " << t;
        ASSERT_NEAR(d.state().v, o.state().v, 1e-12) << "step " << t;
    }
}

TEST(OdeNeuron, Rkf45CostsMoreRhsEvaluationsThanEuler)
{
    NeuronParams p = defaultParams(ModelKind::DLIF);
    OdeNeuron euler(p, SolverKind::Euler);
    OdeNeuron rkf(p, SolverKind::RKF45);
    for (int t = 0; t < 100; ++t) {
        euler.step(0.3);
        rkf.step(0.3);
    }
    EXPECT_EQ(euler.rhsEvaluations(), 100u);
    EXPECT_GT(rkf.rhsEvaluations(), 5u * euler.rhsEvaluations());
}

TEST(OdeNeuron, Rkf45ProducesPlausibleSpiking)
{
    NeuronParams p = defaultParams(ModelKind::DLIF);
    OdeNeuron n(p, SolverKind::RKF45);
    int spikes = 0;
    for (int t = 0; t < 5000; ++t)
        spikes += n.step(0.05);
    EXPECT_GT(spikes, 0);
    EXPECT_LT(spikes, 5000 / static_cast<int>(p.arSteps));
}

TEST(Population, StepsAllNeuronsAndReportsSpikes)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    ReferencePopulation pop(p, 8);
    std::vector<double> input(8 * p.numSynapseTypes, 0.0);
    // Drive only neuron 3 above threshold.
    input[3 * p.numSynapseTypes] = 1.5;
    std::vector<uint8_t> fired;
    int spikes3 = 0, others = 0;
    for (int t = 0; t < 500; ++t) {
        pop.step(input, fired);
        for (size_t i = 0; i < fired.size(); ++i) {
            if (fired[i])
                (i == 3 ? spikes3 : others) += 1;
        }
    }
    EXPECT_GT(spikes3, 0);
    EXPECT_EQ(others, 0);
}

TEST(Population, ResetRestoresRestingState)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    ReferencePopulation pop(p, 4);
    std::vector<double> input(4 * p.numSynapseTypes, 0.5);
    std::vector<uint8_t> fired;
    pop.step(input, fired);
    EXPECT_GT(pop.state(0).v, 0.0);
    pop.reset();
    EXPECT_DOUBLE_EQ(pop.state(0).v, 0.0);
}

} // namespace
} // namespace flexon
