/**
 * @file
 * Tests for the network-description front-end: parsing of every
 * directive, parameter overrides, error reporting with line numbers,
 * determinism, and end-to-end simulation of a scripted network.
 */

#include <gtest/gtest.h>

#include "frontend/script.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

constexpr const char *basicScript = R"(
# A small E/I network.
seed 42
population exc model=DLIF count=40
population inh model=DLIF count=10 eps_m=0.02
connect exc exc p=0.1 weight=0.4 delay=1:5 type=0
connect exc inh p=0.2 weight=0.4 delay=1:5 type=0
connect inh exc p=0.3 weight=-1.2 delay=2 type=1
stimulus poisson exc rate=0.05 weight=1.0
stimulus pattern inh period=100 weight=0.5 type=0
)";

TEST(Script, ParsesPopulationsAndWiring)
{
    ParsedScript s = parseScriptString(basicScript);
    ASSERT_EQ(s.network.numPopulations(), 2u);
    EXPECT_EQ(s.network.population(0).name, "exc");
    EXPECT_EQ(s.network.population(0).count, 40u);
    EXPECT_EQ(s.network.population(1).count, 10u);
    EXPECT_EQ(s.network.numNeurons(), 50u);
    EXPECT_GT(s.network.numSynapses(), 0u);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_EQ(s.stimulus.numSources(), 2u);
}

TEST(Script, ParameterOverridesApply)
{
    ParsedScript s = parseScriptString(basicScript);
    EXPECT_DOUBLE_EQ(s.network.population(1).params.epsM, 0.02);
    // Unoverridden fields keep the model defaults.
    EXPECT_DOUBLE_EQ(s.network.population(0).params.epsM, 0.01);
}

TEST(Script, AllOverrideKeysAccepted)
{
    ParsedScript s = parseScriptString(
        "population p model=AdEx count=2 types=3 eps_m=0.015 "
        "delta_t=0.25 v_crit=0.4 v_firing=1.4 eps_w=0.002 a=-0.02 "
        "v_w=0.2 b=0.1 ar_steps=15 eps_g0=0.03 v_g0=2.5 eps_g2=0.01 "
        "v_g2=-1.5\n");
    const NeuronParams &p = s.network.population(0).params;
    EXPECT_EQ(p.numSynapseTypes, 3u);
    EXPECT_DOUBLE_EQ(p.epsM, 0.015);
    EXPECT_DOUBLE_EQ(p.deltaT, 0.25);
    EXPECT_DOUBLE_EQ(p.vFiring, 1.4);
    EXPECT_DOUBLE_EQ(p.a, -0.02);
    EXPECT_EQ(p.arSteps, 15u);
    EXPECT_DOUBLE_EQ(p.syn[0].epsG, 0.03);
    EXPECT_DOUBLE_EQ(p.syn[2].vG, -1.5);
}

TEST(Script, RrOverridesViaGsfaModel)
{
    ParsedScript s = parseScriptString(
        "population p model=IF_cond_exp_gsfa_grr count=2 eps_r=0.1 "
        "v_rr=-0.4 v_ar=-0.6 q_r=-0.3 b=-0.2 eps_w=0.01\n");
    const NeuronParams &p = s.network.population(0).params;
    EXPECT_DOUBLE_EQ(p.epsR, 0.1);
    EXPECT_DOUBLE_EQ(p.vRR, -0.4);
    EXPECT_DOUBLE_EQ(p.qR, -0.3);
}

TEST(Script, OuStimulusDirective)
{
    ParsedScript s = parseScriptString(R"(
population a model=DLIF count=4
stimulus ou a weight=0.05 sigma=0.02 tau=30
)");
    EXPECT_EQ(s.stimulus.numSources(), 1u);
    // OU feeds every neuron every step.
    EXPECT_NEAR(s.stimulus.expectedSpikesPerStep(), 4.0, 1e-9);
    EXPECT_DEATH(parseScriptString(
                     "population a model=DLIF count=4\n"
                     "stimulus ou a weight=0.05\n"),
                 "sigma");
}

TEST(Script, FanoutDirective)
{
    ParsedScript s = parseScriptString(R"(
population a model=LIF count=5
population b model=LIF count=20
fanout a b k=7 weight=0.5 delay=1:3
)");
    EXPECT_EQ(s.network.numSynapses(), 5u * 7u);
}

TEST(Script, DeterministicForSameSeed)
{
    const ParsedScript a = parseScriptString(basicScript);
    const ParsedScript b = parseScriptString(basicScript);
    ASSERT_EQ(a.network.numSynapses(), b.network.numSynapses());
    for (uint32_t n = 0; n < a.network.numNeurons(); ++n) {
        auto oa = a.network.outgoing(n);
        auto ob = b.network.outgoing(n);
        ASSERT_EQ(oa.size(), ob.size());
        for (size_t i = 0; i < oa.size(); ++i) {
            EXPECT_EQ(oa[i].target, ob[i].target);
            EXPECT_EQ(oa[i].weight, ob[i].weight);
        }
    }
}

TEST(Script, ScriptedNetworkSimulates)
{
    ParsedScript s = parseScriptString(basicScript);
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    Simulator sim(s.network, s.stimulus, opts);
    sim.run(2000);
    EXPECT_GT(sim.stats().spikes, 0u);
}

TEST(Script, ErrorsCarryLineNumbers)
{
    EXPECT_DEATH(parseScriptString("bogus directive\n"),
                 "line 1: unknown directive");
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3\n"
                     "connect a b p=0.5 weight=1\n"),
                 "line 2: unknown population");
    EXPECT_DEATH(parseScriptString(
                     "population a model=NoSuchModel count=3\n"),
                 "unknown model NoSuchModel; registered models");
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3\n"
                     "connect a a p=2.0 weight=1\n"),
                 "probability");
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3 eps_m=nope\n"),
                 "bad numeric value");
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3 frobnicate=1\n"),
                 "unknown parameter");
    EXPECT_DEATH(parseScriptString(""), "no populations");
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3\n"
                     "connect a a p=0.5 weight=1 delay=0:300\n"),
                 "delay range");
}

TEST(Script, InvalidParametersRejectedAtParse)
{
    EXPECT_DEATH(parseScriptString(
                     "population a model=LIF count=3 eps_m=7\n"),
                 "invalid parameters");
}

TEST(Script, CommentsAndBlankLinesIgnored)
{
    ParsedScript s = parseScriptString(R"(

# leading comment
population a model=LLIF count=4   # trailing comment

)");
    EXPECT_EQ(s.network.numPopulations(), 1u);
    EXPECT_TRUE(
        s.network.population(0).params.features.has(Feature::LID));
}

} // namespace
} // namespace flexon
