/**
 * @file
 * Tests for the telemetry subsystem: sharded counters/timers whose
 * sums are independent of the thread count, RAII timer/span nesting,
 * the flight recorder's B/E pairing and serialization, registry
 * reset semantics, and the guarantee that the telemetry-off path is
 * bit-identical to an instrumented run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

using telemetry::Registry;
using telemetry::TelemetryConfig;

/** Count occurrences of `needle` in `haystack`. */
size_t
countOf(const std::string &haystack, const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/** RAII guard: restore the default (all-off) config and drop any
 *  recorded spans, so tests cannot leak tracing into each other. */
struct TelemetryOffGuard
{
    ~TelemetryOffGuard()
    {
        telemetry::configure(TelemetryConfig{});
        telemetry::clearTrace();
    }
};

TEST(TelemetryRegistry, CounterSumIndependentOfThreadCount)
{
    Registry reg;
    telemetry::Counter &c = reg.counter("test.count", "test");
    const size_t n = 50000;
    for (size_t lanes : {size_t{1}, size_t{3}, size_t{4}}) {
        c.reset();
        ThreadPool::global().parallelFor(
            n, lanes, [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i)
                    c.add(1);
            });
        EXPECT_EQ(c.value(), n) << "lanes " << lanes;
    }
}

TEST(TelemetryRegistry, FindOrCreateReturnsStableHandles)
{
    Registry reg;
    telemetry::Counter &a = reg.counter("x");
    telemetry::Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7u);

    // reset() zeroes values but keeps registered handles valid.
    reg.reset();
    EXPECT_EQ(a.value(), 0u);
    a.add(2);
    EXPECT_EQ(reg.counter("x").value(), 2u);
}

TEST(TelemetryRegistry, GaugeSetAndAccumulate)
{
    Registry reg;
    telemetry::Gauge &g = reg.gauge("g");
    g.set(1.5);
    g.add(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryRegistry, ScopedTimerNests)
{
    Registry reg;
    telemetry::Timer &outer = reg.timer("outer");
    telemetry::Timer &inner = reg.timer("inner");
    {
        telemetry::ScopedTimer o(outer);
        {
            telemetry::ScopedTimer i(inner);
            // Burn a little time so the inner interval is nonzero.
            volatile double x = 0.0;
            for (int k = 0; k < 1000; ++k)
                x = x + 1.0;
        }
    }
    EXPECT_EQ(outer.count(), 1u);
    EXPECT_EQ(inner.count(), 1u);
    // The inner interval is contained in the outer one.
    EXPECT_GE(outer.nanos(), inner.nanos());
}

TEST(TelemetryRegistry, HistogramShardsMergeAcrossThreads)
{
    Registry reg;
    telemetry::HistogramMetric &h =
        reg.histogram("h", 0.0, 1.0, 10);
    const size_t n = 10000;
    ThreadPool::global().parallelFor(
        n, 4, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                h.sample(static_cast<double>(i) /
                         static_cast<double>(n));
        });
    EXPECT_EQ(h.total(), n);
    Histogram merged = h.merged();
    EXPECT_EQ(merged.total(), n);
    // Uniform samples: the median lands in the middle of the range.
    EXPECT_NEAR(merged.percentile(50.0), 0.5, 0.1);
}

TEST(TelemetryRegistry, WriteJsonListsEveryMetric)
{
    Registry reg;
    reg.counter("c").add(3);
    reg.gauge("g").set(2.5);
    reg.timer("t").addNanos(1000);
    reg.histogram("h", 0.0, 1.0, 4).sample(0.3);
    std::ostringstream oss;
    reg.writeJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"c\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"g\""), std::string::npos);
    EXPECT_NE(json.find("\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"h\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(TelemetryTrace, DisabledRecordsNothing)
{
    TelemetryOffGuard guard;
    telemetry::configure(TelemetryConfig{});
    telemetry::clearTrace();
    {
        telemetry::TraceScope scope("never");
    }
    EXPECT_EQ(telemetry::traceEventCount(), 0u);
}

TEST(TelemetryTrace, SpansPairAndSerialize)
{
    TelemetryOffGuard guard;
    TelemetryConfig config;
    config.trace = true;
    telemetry::configure(config);
    telemetry::clearTrace();

    Registry reg;
    telemetry::Timer &t = reg.timer("t");
    {
        telemetry::TraceScope outer("outer");
        {
            telemetry::TraceScope inner("inner");
        }
        // ScopedTimer emits a span of the same extent when tracing.
        telemetry::ScopedTimer timed(t, "timed");
    }
    EXPECT_EQ(telemetry::traceEventCount(), 6u);

    std::ostringstream oss;
    telemetry::writeTraceJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // Every begin has a matching end, per name.
    EXPECT_EQ(countOf(json, "\"ph\": \"B\""), 3u);
    EXPECT_EQ(countOf(json, "\"ph\": \"E\""), 3u);
    for (const char *name : {"outer", "inner", "timed"})
        EXPECT_EQ(countOf(json, std::string{"\""} + name + "\""),
                  2u);
    // Braces balance — the cheap structural-validity check (the
    // Python tools load the same output with a real JSON parser).
    EXPECT_EQ(countOf(json, "{"), countOf(json, "}"));

    telemetry::clearTrace();
    EXPECT_EQ(telemetry::traceEventCount(), 0u);
}

TEST(TelemetryTrace, CapacityDropsAreCounted)
{
    TelemetryOffGuard guard;
    TelemetryConfig config;
    config.trace = true;
    config.traceCapacity = 4;
    telemetry::configure(config);
    telemetry::clearTrace();

    // A fresh thread gets a fresh buffer, which latches the capacity
    // active at its first event (already-registered buffers keep
    // their original capacity).
    std::thread recorder([] {
        for (int i = 0; i < 10; ++i) {
            telemetry::traceBegin("span");
            telemetry::traceEnd("span");
        }
    });
    recorder.join();

    EXPECT_EQ(telemetry::traceEventCount(), 4u);
    EXPECT_EQ(telemetry::traceDropped(), 16u);
    telemetry::clearTrace();
    EXPECT_EQ(telemetry::traceDropped(), 0u);
}

/** A small Vogels-Abbott instance for end-to-end telemetry runs. */
BenchmarkInstance
smallInstance()
{
    return buildBenchmark(findBenchmark("Vogels-Abbott"), 100.0,
                          1234);
}

std::vector<uint64_t>
runAndCollectSpikes(const BenchmarkInstance &inst, uint64_t steps)
{
    SimulatorOptions opts;
    opts.backend = BackendKind::Flexon;
    opts.threads = 2;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(steps);
    return sim.spikeCounts();
}

TEST(TelemetrySimulator, OffPathBitIdenticalToInstrumentedRun)
{
    TelemetryOffGuard guard;
    BenchmarkInstance inst = smallInstance();
    const uint64_t steps = 300;

    telemetry::configure(TelemetryConfig{});
    const std::vector<uint64_t> off =
        runAndCollectSpikes(inst, steps);

    TelemetryConfig config;
    config.detail = true;
    config.trace = true;
    telemetry::configure(config);
    const std::vector<uint64_t> on =
        runAndCollectSpikes(inst, steps);

    EXPECT_EQ(off, on);
}

TEST(TelemetrySimulator, ResetReportsIdenticalCounters)
{
    TelemetryOffGuard guard;
    TelemetryConfig config;
    config.detail = true;
    telemetry::configure(config);

    BenchmarkInstance inst = smallInstance();
    SimulatorOptions opts;
    opts.backend = BackendKind::Flexon;
    Simulator sim(inst.network, inst.stimulus, opts);

    sim.run(200);
    const auto first = sim.metrics().counterValues();
    const PhaseStats firstStats = sim.stats();

    sim.reset();
    // reset() zeroes the registry: a fresh run starts from scratch.
    for (const auto &[name, value] :
         sim.metrics().counterValues())
        EXPECT_EQ(value, 0u) << name;

    sim.run(200);
    const auto second = sim.metrics().counterValues();
    EXPECT_EQ(first, second);
    EXPECT_EQ(firstStats.spikes, sim.stats().spikes);
    EXPECT_EQ(firstStats.synapseEvents,
              sim.stats().synapseEvents);
}

TEST(TelemetrySimulator, PhaseStatsViewMatchesRegistry)
{
    TelemetryOffGuard guard;
    BenchmarkInstance inst = smallInstance();
    Simulator sim(inst.network, inst.stimulus);
    sim.run(100);
    const PhaseStats &st = sim.stats();
    EXPECT_EQ(st.steps, 100u);
    // The view is materialized from the registry handles.
    EXPECT_EQ(st.spikes,
              sim.metrics().counter("sim.spikes").value());
    EXPECT_DOUBLE_EQ(
        st.neuronSec,
        sim.metrics().timer("phase.neuron").seconds());
    // totalSec() covers all tracked phases, probes included.
    EXPECT_DOUBLE_EQ(st.totalSec(),
                     st.stimulusSec + st.neuronSec +
                         st.synapseSec + st.probeSec);
    EXPECT_LE(st.synapseRouteSec, st.synapseSec);
}

TEST(TelemetrySimulator, RunReportIsWellFormed)
{
    TelemetryOffGuard guard;
    TelemetryConfig config;
    config.detail = true;
    telemetry::configure(config);

    BenchmarkInstance inst = smallInstance();
    Simulator sim(inst.network, inst.stimulus);
    sim.run(50);

    const std::string path = "test_telemetry_report.json";
    ASSERT_TRUE(sim.writeRunReport(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream oss;
    oss << in.rdbuf();
    const std::string json = oss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"schema\": \"flexon-run-report-v5\""),
              std::string::npos);
    for (const char *section :
         {"\"build\"", "\"telemetry\"", "\"config\"", "\"stats\"",
          "\"pool\"", "\"metrics\"", "\"global_metrics\""})
        EXPECT_NE(json.find(section), std::string::npos)
            << section;
    EXPECT_EQ(countOf(json, "{"), countOf(json, "}"));
    EXPECT_EQ(countOf(json, "["), countOf(json, "]"));
}

} // namespace
} // namespace flexon
