#!/bin/sh
# Self-test for the observability tool chain: generate a real
# report/trace pair with flexon_sim, validate both with
# tools/check_report and tools/trace_summary, then corrupt each
# artifact and assert the validators reject it non-zero. Also covers
# the health fault-injection exit codes (detector abort = 3,
# watchdog = 4) and the Prometheus snapshot shape.
#
# Usage: tools_selftest.sh <flexon_sim> <check_report> <trace_summary>
set -eu

SIM=$1
CHECK_REPORT=$2
TRACE_SUMMARY=$3

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() {
    echo "tools_selftest: FAIL: $1" >&2
    exit 1
}

# --- A healthy run: report + trace validate cleanly. ----------------
"$SIM" --benchmark Vogels-Abbott --scale 20 --steps 300 \
    --telemetry --report run.json --trace trace.json \
    --metrics-out metrics.prom --metrics-every 64 \
    > sim.log 2>&1 || fail "baseline run exited $?"

"$CHECK_REPORT" run.json || fail "check_report rejected a good report"
"$TRACE_SUMMARY" trace.json > /dev/null \
    || fail "trace_summary rejected a good trace"
"$TRACE_SUMMARY" trace.json --report run.json > /dev/null \
    || fail "trace_summary cross-check rejected a good pair"

grep -q '"flexon-run-report-v5"' run.json \
    || fail "report is not schema v5"
grep -q '"health"' run.json || fail "report lacks a health section"

# --- Prometheus snapshot shape. -------------------------------------
grep -q '^# TYPE flexon_export_step gauge$' metrics.prom \
    || fail "metrics snapshot lacks the export_step TYPE line"
grep -q '^flexon_export_step{session="Vogels-Abbott",engine=' \
    metrics.prom || fail "metrics snapshot lacks session labels"
test -s metrics.prom.jsonl || fail "metrics JSONL history is empty"

# --- Corrupted artifacts must fail non-zero. ------------------------
sed 's/"flexon-run-report-v5"/"flexon-run-report-v99"/' run.json \
    > bad_schema.json
if "$CHECK_REPORT" bad_schema.json > /dev/null 2>&1; then
    fail "check_report accepted an unknown schema version"
fi

sed 's/"sweeps": [0-9]*/"sweeps": 999999/' run.json > bad_health.json
if "$CHECK_REPORT" bad_health.json > /dev/null 2>&1; then
    fail "check_report accepted an impossible sweep count"
fi

head -c 100 run.json > truncated.json
if "$CHECK_REPORT" truncated.json > /dev/null 2>&1; then
    fail "check_report accepted truncated JSON"
fi

head -c 50 trace.json > truncated_trace.json
if "$TRACE_SUMMARY" truncated_trace.json > /dev/null 2>&1; then
    fail "trace_summary accepted a truncated trace"
fi

# A report whose phase timer disagrees wildly with the trace spans
# must fail the cross-check.
python3 -c "
import json, sys
d = json.load(open('run.json'))
d['stats']['neuron_sec'] = d['stats']['neuron_sec'] + 10.0
json.dump(d, open('bad_phase.json', 'w'))
"
if "$TRACE_SUMMARY" trace.json --report bad_phase.json \
    > /dev/null 2>&1; then
    fail "trace_summary cross-check accepted a mismatched report"
fi

# --- Fault injection: the right detector, the right exit code. ------
set +e
FLEXON_HEALTH_INJECT=nan@50 "$SIM" --benchmark Vogels-Abbott \
    --scale 20 --steps 200 --health nan:abort,sample=1 \
    --crash-dump nan_dump.json > nan.log 2>&1
rc=$?
set -e
test "$rc" -eq 3 || fail "NaN injection exited $rc, expected 3"
grep -q '"flexon-crash-dump-v1"' nan_dump.json \
    || fail "NaN abort left no readable crash dump"

set +e
FLEXON_HEALTH_INJECT=rate@100 "$SIM" --benchmark Vogels-Abbott \
    --scale 20 --steps 200 --health rate:abort,sample=8,warmup=32 \
    --crash-dump rate_dump.json > rate.log 2>&1
rc=$?
set -e
test "$rc" -eq 3 || fail "rate injection exited $rc, expected 3"

set +e
FLEXON_HEALTH_INJECT=stall@50 "$SIM" --benchmark Vogels-Abbott \
    --scale 20 --steps 200 --watchdog-timeout 0.5 \
    --crash-dump stall_dump.json > stall.log 2>&1
rc=$?
set -e
test "$rc" -eq 4 || fail "stall injection exited $rc, expected 4"
grep -q '"traceEvents"' stall_dump.json \
    || fail "watchdog dump lacks the flight-recorder trace"
# The watchdog arms the recorder implicitly, so the dumped trace must
# hold real events ("ph" phase keys), not just an empty array.
grep -q '"ph"' stall_dump.json \
    || fail "watchdog dump's flight-recorder trace is empty"

# --- Strict CLI parsing still rejects trailing garbage (exit 2). ----
for bad in "--health nan:maybe" "--metrics-every 12x" \
    "--watchdog-timeout fast"; do
    set +e
    # shellcheck disable=SC2086
    "$SIM" --benchmark Vogels-Abbott --scale 20 --steps 1 $bad \
        > /dev/null 2>&1
    rc=$?
    set -e
    test "$rc" -eq 2 || fail "'$bad' exited $rc, expected 2"
done

echo "tools_selftest: OK"
