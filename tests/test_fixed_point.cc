/**
 * @file
 * Unit and property tests for the fixed-point arithmetic (Q10.22) and
 * the Schraudolph fast-exp approximation the Flexon exponentiation
 * unit uses.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "fixed/fast_exp.hh"
#include "fixed/fixed_point.hh"

namespace flexon {
namespace {

TEST(FixedPoint, Layout)
{
    EXPECT_EQ(Fix::intBits, 10);
    EXPECT_EQ(Fix::fracBits, 22);
    EXPECT_EQ(Fix::totalBits, 32);
    EXPECT_EQ(Fix::rawOne, int64_t(1) << 22);
    EXPECT_EQ(Fix::rawMax, (int64_t(1) << 31) - 1);
    EXPECT_EQ(Fix::rawMin, -(int64_t(1) << 31));
}

TEST(FixedPoint, DoubleRoundTrip)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 3.14159, -271.828}) {
        EXPECT_NEAR(Fix::fromDouble(v).toDouble(), v, Fix::epsilon());
    }
}

TEST(FixedPoint, RoundsToNearest)
{
    // Half an LSB rounds away from zero.
    const double half_lsb = Fix::epsilon() / 2.0;
    EXPECT_EQ(Fix::fromDouble(half_lsb).raw(), 1);
    EXPECT_EQ(Fix::fromDouble(-half_lsb).raw(), -1);
    EXPECT_EQ(Fix::fromDouble(half_lsb * 0.9).raw(), 0);
}

TEST(FixedPoint, AdditionAndSubtraction)
{
    const Fix a = Fix::fromDouble(1.5);
    const Fix b = Fix::fromDouble(-0.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 1.25);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 1.75);
    EXPECT_DOUBLE_EQ((-a).toDouble(), -1.5);
}

TEST(FixedPoint, MultiplicationExactForDyadics)
{
    const Fix a = Fix::fromDouble(0.5);
    const Fix b = Fix::fromDouble(0.25);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 0.125);
    EXPECT_DOUBLE_EQ((a * Fix::one()).toDouble(), 0.5);
    EXPECT_DOUBLE_EQ((Fix::zero() * b).toDouble(), 0.0);
}

TEST(FixedPoint, MultiplicationTruncatesTowardNegInfinity)
{
    // 1 LSB * 0.5 = half an LSB, which truncates to 0 for positive
    // and to -1 LSB for negative operands (arithmetic shift).
    const Fix lsb = Fix::fromRaw(1);
    const Fix neg_lsb = Fix::fromRaw(-1);
    const Fix half = Fix::fromDouble(0.5);
    EXPECT_EQ((lsb * half).raw(), 0);
    EXPECT_EQ((neg_lsb * half).raw(), -1);
}

TEST(FixedPoint, AdditionSaturates)
{
    const Fix max = Fix::fromRaw(Fix::rawMax);
    const Fix min = Fix::fromRaw(Fix::rawMin);
    EXPECT_EQ((max + max).raw(), Fix::rawMax);
    EXPECT_EQ((min + min).raw(), Fix::rawMin);
    EXPECT_EQ((max + Fix::fromRaw(1)).raw(), Fix::rawMax);
}

TEST(FixedPoint, MultiplicationSaturates)
{
    const Fix big = Fix::fromDouble(500.0);
    EXPECT_EQ((big * big).raw(), Fix::rawMax);
    EXPECT_EQ((big * (-big)).raw(), Fix::rawMin);
}

TEST(FixedPoint, FromDoubleSaturates)
{
    EXPECT_EQ(Fix::fromDouble(1e9).raw(), Fix::rawMax);
    EXPECT_EQ(Fix::fromDouble(-1e9).raw(), Fix::rawMin);
}

TEST(FixedPoint, Comparisons)
{
    const Fix a = Fix::fromDouble(0.5);
    const Fix b = Fix::fromDouble(0.75);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a == Fix::fromDouble(0.5));
    EXPECT_TRUE(a != b);
}

TEST(FixedPoint, PropertyAdditionMatchesDouble)
{
    Rng rng(101);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        const double y = rng.uniform(-100.0, 100.0);
        const double got =
            (Fix::fromDouble(x) + Fix::fromDouble(y)).toDouble();
        EXPECT_NEAR(got, x + y, 2.0 * Fix::epsilon());
    }
}

TEST(FixedPoint, PropertyMultiplicationMatchesDouble)
{
    Rng rng(103);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform(-10.0, 10.0);
        const double y = rng.uniform(-10.0, 10.0);
        const double got =
            (Fix::fromDouble(x) * Fix::fromDouble(y)).toDouble();
        // Conversion (0.5 LSB each) plus truncation (1 LSB), scaled
        // by the operand magnitudes.
        EXPECT_NEAR(got, x * y, 25.0 * Fix::epsilon());
    }
}

TEST(TruncateMembrane, ClampsToUnitInterval)
{
    EXPECT_EQ(truncateMembrane(Fix::fromDouble(-0.5)), Fix::zero());
    EXPECT_EQ(truncateMembrane(Fix::fromDouble(0.5)),
              Fix::fromDouble(0.5));
    EXPECT_EQ(truncateMembrane(Fix::fromDouble(1.5)).raw(),
              Fix::rawOne - 1);
    EXPECT_EQ(truncateMembrane(Fix::one()).raw(), Fix::rawOne - 1);
}

TEST(TruncateMembrane, FitsIn22Bits)
{
    // After truncation the value is a non-negative pure fraction:
    // exactly the 22 fraction bits (Section IV-B1).
    Rng rng(107);
    for (int i = 0; i < 1000; ++i) {
        const Fix v = Fix::fromDouble(rng.uniform(-2.0, 2.0));
        const int64_t raw = truncateMembrane(v).raw();
        EXPECT_GE(raw, 0);
        EXPECT_LT(raw, int64_t(1) << 22);
    }
}

TEST(FastExp, AccurateWithinSchraudolphBound)
{
    // Schraudolph's approximation has < ~4 % relative error.
    for (double y = -6.0; y <= 6.0; y += 0.01) {
        const double exact = std::exp(y);
        const double approx = fastExp(y);
        EXPECT_NEAR(approx / exact, 1.0, 0.04) << "y=" << y;
    }
}

TEST(FastExp, ClampsExtremeInputs)
{
    EXPECT_TRUE(std::isfinite(fastExp(1000.0)));
    EXPECT_TRUE(std::isfinite(fastExp(-1000.0)));
    EXPECT_GT(fastExp(1000.0), 1e200);
    EXPECT_LT(fastExp(-1000.0), 1e-200);
}

TEST(FixedExp, MatchesDoubleExpWithinTolerance)
{
    // Over the Flexon operating range the combined fixed-point and
    // approximation error stays below 4 % relative + 1 LSB absolute.
    for (double y = -5.0; y <= 2.5; y += 0.01) {
        const double exact = std::exp(y);
        const double approx = fixedExp(Fix::fromDouble(y)).toDouble();
        EXPECT_NEAR(approx, exact,
                    0.04 * exact + 2.0 * Fix::epsilon())
            << "y=" << y;
    }
}

TEST(FixedExp, DeterministicAcrossCalls)
{
    const Fix x = Fix::fromDouble(1.2345);
    EXPECT_EQ(fixedExp(x).raw(), fixedExp(x).raw());
}

TEST(FixedPointNarrow, SmallFormatsBehave)
{
    using Q4 = FixedPoint<4, 4>;
    EXPECT_EQ(Q4::totalBits, 8);
    EXPECT_EQ(Q4::rawMax, 127);
    EXPECT_DOUBLE_EQ(Q4::fromDouble(1.5).toDouble(), 1.5);
    // Saturation at +7.9375.
    EXPECT_EQ(Q4::fromDouble(100.0).raw(), 127);
}

TEST(FixedPointExhaustive, EightBitAddMatchesIntegerModel)
{
    // FixedPoint<4,4> has 256 representable values: check saturating
    // addition exhaustively against a wide-integer model.
    using Q4 = FixedPoint<4, 4>;
    for (int64_t a = Q4::rawMin; a <= Q4::rawMax; ++a) {
        for (int64_t b = Q4::rawMin; b <= Q4::rawMax; ++b) {
            const int64_t expected =
                std::clamp(a + b, Q4::rawMin, Q4::rawMax);
            ASSERT_EQ((Q4::fromRaw(a) + Q4::fromRaw(b)).raw(),
                      expected)
                << a << " + " << b;
        }
    }
}

TEST(FixedPointExhaustive, EightBitMulMatchesIntegerModel)
{
    using Q4 = FixedPoint<4, 4>;
    for (int64_t a = Q4::rawMin; a <= Q4::rawMax; ++a) {
        for (int64_t b = Q4::rawMin; b <= Q4::rawMax; ++b) {
            // Arithmetic shift truncates toward negative infinity.
            const int64_t prod = a * b;
            const int64_t shifted =
                prod >= 0 ? prod >> 4
                          : ~((~prod) >> 4) - ((prod & 15) ? 0 : 0);
            const int64_t floor_shift =
                static_cast<int64_t>(
                    std::floor(static_cast<double>(prod) / 16.0));
            (void)shifted;
            const int64_t expected = std::clamp(
                floor_shift, Q4::rawMin, Q4::rawMax);
            ASSERT_EQ((Q4::fromRaw(a) * Q4::fromRaw(b)).raw(),
                      expected)
                << a << " * " << b;
        }
    }
}

} // namespace
} // namespace flexon
