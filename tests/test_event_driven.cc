/**
 * @file
 * Tests for the event-driven LLIF engine: bit-exact equivalence with
 * the dense Simulator (membranes and spike trains), the update
 * savings on sparse activity, the LLIF-only restriction, and the
 * lazy catch-up semantics (decay and refractory).
 */

#include <gtest/gtest.h>

#include "features/model_table.hh"
#include "snn/event_driven.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

/** A recurrent LLIF network with background stimulus. */
struct LlifSetup
{
    Network net;
    StimulusGenerator stim{1};
};

LlifSetup
llifNetwork(size_t neurons, double rate, uint64_t seed)
{
    LlifSetup s;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    const size_t pop = s.net.addPopulation("llif", p, neurons);
    Rng rng(seed);
    // Suprathreshold-capable recurrent weights (CUB, LID: raw units).
    s.net.connectRandom(pop, pop, 0.05, 0.4, 1, 6, 0, rng);
    s.net.finalize();
    s.stim = StimulusGenerator(seed ^ 0xabcdULL);
    s.stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), rate, 0.8f, 0));
    return s;
}

TEST(EventDriven, SpikesMatchDenseSimulator)
{
    LlifSetup a = llifNetwork(100, 0.01, 5);
    LlifSetup b = llifNetwork(100, 0.01, 5);

    SimulatorOptions opts;
    Simulator dense(a.net, a.stim, opts);
    dense.run(3000);

    EventDrivenSimulator sparse(b.net, b.stim);
    sparse.run(3000);

    EXPECT_EQ(sparse.stats().spikes, dense.stats().spikes);
    for (uint32_t n = 0; n < 100; ++n) {
        ASSERT_EQ(sparse.spikeCounts()[n], dense.spikeCounts()[n])
            << "neuron " << n;
    }
}

TEST(EventDriven, MembranesMatchDenseAtEveryProbe)
{
    LlifSetup a = llifNetwork(40, 0.02, 9);
    LlifSetup b = llifNetwork(40, 0.02, 9);

    SimulatorOptions opts;
    Simulator dense(a.net, a.stim, opts);
    EventDrivenSimulator sparse(b.net, b.stim);

    for (int chunk = 0; chunk < 20; ++chunk) {
        dense.run(100);
        sparse.run(100);
        for (uint32_t n = 0; n < 40; ++n) {
            // Batched closed-form decay vs k repeated subtractions:
            // equal to within ~1 ulp per silent interval.
            ASSERT_NEAR(sparse.membrane(n),
                        dense.backend().membrane(n), 1e-12)
                << "chunk " << chunk << " neuron " << n;
        }
    }
}

TEST(EventDriven, SavesUpdatesOnSparseActivity)
{
    LlifSetup s = llifNetwork(200, 0.002, 11);
    EventDrivenSimulator sim(s.net, s.stim);
    sim.run(5000);
    EXPECT_GT(sim.stats().spikes, 0u);
    // At 0.2 % input rate the engine should skip the vast majority
    // of dense updates (the Section IV-A event-driven win).
    EXPECT_GT(sim.stats().savings(), 0.8);
    EXPECT_EQ(sim.stats().denseUpdates, 5000u * 200u);
}

TEST(EventDriven, DenseActivityApproachesDenseCost)
{
    LlifSetup s = llifNetwork(50, 0.9, 13);
    EventDrivenSimulator sim(s.net, s.stim);
    sim.run(500);
    EXPECT_LT(sim.stats().savings(), 0.35);
}

TEST(EventDriven, RejectsNonLlifPopulations)
{
    Network net;
    net.addPopulation("lif", defaultParams(ModelKind::LIF), 4);
    net.finalize();
    StimulusGenerator stim(1);
    EXPECT_DEATH(EventDrivenSimulator(net, stim),
                 "requires LLIF");

    Network net2;
    NeuronParams rr = defaultParams(ModelKind::LLIF);
    rr.features.add(Feature::RR);
    rr.epsR = 0.1;
    rr.qR = -0.1;
    net2.addPopulation("llif_rr", rr, 4);
    net2.finalize();
    EXPECT_DEATH(EventDrivenSimulator(net2, stim),
                 "does not support");
}

TEST(EventDriven, ResetThenRerunIsSpikeForSpikeIdentical)
{
    LlifSetup s = llifNetwork(60, 0.02, 17);
    SessionOptions opts;
    opts.recordSpikes = true;
    opts.probes = {0, 9};
    EventDrivenSimulator sim(s.net, s.stim, opts);

    sim.run(800);
    const auto counts = sim.spikeCounts();
    const auto events = sim.spikeEvents();
    const auto trace0 = sim.probeTrace(0);
    const uint64_t updates = sim.stats().updates;
    ASSERT_GT(sim.stats().spikes, 0u);

    sim.reset();
    EXPECT_EQ(sim.currentStep(), 0u);
    EXPECT_EQ(sim.stats().spikes, 0u);
    EXPECT_TRUE(sim.spikeEvents().empty());

    sim.run(800);
    EXPECT_EQ(sim.spikeCounts(), counts);
    ASSERT_EQ(sim.spikeEvents().size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(sim.spikeEvents()[i].step, events[i].step);
        EXPECT_EQ(sim.spikeEvents()[i].neuron, events[i].neuron);
    }
    ASSERT_EQ(sim.probeTrace(0).size(), trace0.size());
    for (size_t t = 0; t < trace0.size(); ++t)
        EXPECT_EQ(sim.probeTrace(0)[t], trace0[t]) << "step " << t;
    EXPECT_EQ(sim.stats().updates, updates);
}

TEST(EventDriven, RecordedEventsMatchDenseSimulator)
{
    LlifSetup a = llifNetwork(80, 0.015, 23);
    LlifSetup b = llifNetwork(80, 0.015, 23);

    SimulatorOptions denseOpts;
    denseOpts.recordSpikes = true;
    Simulator dense(a.net, a.stim, denseOpts);
    dense.run(1500);

    SessionOptions evOpts;
    evOpts.recordSpikes = true;
    EventDrivenSimulator sparse(b.net, b.stim, evOpts);
    sparse.run(1500);

    ASSERT_GT(dense.spikeEvents().size(), 0u);
    ASSERT_EQ(sparse.spikeEvents().size(), dense.spikeEvents().size());
    for (size_t i = 0; i < dense.spikeEvents().size(); ++i) {
        EXPECT_EQ(sparse.spikeEvents()[i].step,
                  dense.spikeEvents()[i].step);
        EXPECT_EQ(sparse.spikeEvents()[i].neuron,
                  dense.spikeEvents()[i].neuron);
    }
}

TEST(EventDriven, LazyRefractoryCountdownIsExact)
{
    // One neuron, driven by two pattern pulses closer together than
    // the refractory period: the second pulse must be swallowed.
    Network net;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    p.arSteps = 50;
    net.addPopulation("n", p, 1);
    net.finalize();

    StimulusGenerator stim(1);
    stim.addSource(StimulusSource::pattern(0, 1, 30, 1.5f, 0));

    EventDrivenSimulator sim(net, stim);
    sim.run(200); // pulses at 0, 30, 60, 90, 120, 150, 180
    // Pulse at t=0 fires; t=30 blocked (refractory until t=50);
    // t=60 fires; t=90 blocked; t=120 fires; t=150 blocked; t=180
    // fires -> 4 spikes.
    EXPECT_EQ(sim.stats().spikes, 4u);
}

} // namespace
} // namespace flexon
