/**
 * @file
 * Tests for the calibration layer and execution planner: builtin
 * defaults must reproduce the legacy hand-tuned behavior exactly,
 * calibration documents must survive a save/load round trip, the
 * planner's strategy choice must flip at the predicted crossover
 * under synthetic calibrations, and a planner-driven run must be
 * bit-identical to the corresponding fixed-strategy run — the
 * planner only ever changes *which* engine steps, never what an
 * engine computes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "features/model_table.hh"
#include "plan/calibration.hh"
#include "plan/planner.hh"
#include "snn/auto_engine.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

using plan::CalibrationData;
using plan::ExecutionPlanner;
using plan::NetworkStats;
using plan::Strategy;

/** A calibration with a synthetic event/dense cost ratio. */
CalibrationData
syntheticCalibration(double eventFactor)
{
    CalibrationData cal = plan::builtinCalibration();
    cal.version = "test-synthetic";
    cal.model.eventNsPerUnit =
        cal.model.denseNsPerNeuron * eventFactor;
    return cal;
}

TEST(Calibration, BuiltinReproducesLegacyCrossover)
{
    // The pre-PR 8 AutoSession switched at 1 / (K + 1); the builtin
    // calibration must land there exactly (kBuiltinEventCostFactor
    // keeps the dense and event unit costs equal, and the common
    // delivery terms cancel out of the crossover).
    const ExecutionPlanner planner(plan::builtinCalibration());
    const NetworkStats net{1000, 50000}; // K = 50
    EXPECT_DOUBLE_EQ(planner.crossoverRate(net), 1.0 / 51.0);

    const NetworkStats dense{100, 9900}; // K = 99
    EXPECT_DOUBLE_EQ(planner.crossoverRate(dense), 1.0 / 100.0);

    // An empty network has no crossover to speak of.
    const NetworkStats empty{0, 0};
    EXPECT_GE(planner.crossoverRate(empty), 0.0);
}

TEST(Calibration, JsonRoundTripPreservesEverything)
{
    CalibrationData cal;
    cal.version = "cal-00DEADBEEF";
    cal.host = "test host \"quoted\"";
    cal.model.denseNsPerNeuron = 3.25;
    cal.model.eventNsPerUnit = 5.5;
    cal.model.deliveryNsPerRecord = 0.75;
    cal.model.ringClearNsPerCell = 0.125;
    cal.model.stepOverheadNs = 321.5;
    cal.model.dispatchNsPerLane = 987.0;
    cal.model.parallelEfficiency = 0.625;
    cal.maxResidual = 0.0625;
    cal.gridPoints = 42;
    cal.maskNsPerNeuron = {{"LLIF", 4.5}, {"Izhikevich", 9.25}};
    cal.providerDeliveryNs = {{"materialized", 1.0},
                              {"procedural", 2.5}};

    const std::string path =
        ::testing::TempDir() + "/roundtrip_cal.json";
    ASSERT_TRUE(plan::saveCalibrationFile(path, cal));

    CalibrationData loaded;
    std::string error;
    ASSERT_TRUE(plan::loadCalibrationFile(path, loaded, &error))
        << error;
    EXPECT_EQ(loaded.version, cal.version);
    EXPECT_EQ(loaded.host, cal.host);
    EXPECT_EQ(loaded.model.denseNsPerNeuron,
              cal.model.denseNsPerNeuron);
    EXPECT_EQ(loaded.model.eventNsPerUnit, cal.model.eventNsPerUnit);
    EXPECT_EQ(loaded.model.deliveryNsPerRecord,
              cal.model.deliveryNsPerRecord);
    EXPECT_EQ(loaded.model.ringClearNsPerCell,
              cal.model.ringClearNsPerCell);
    EXPECT_EQ(loaded.model.stepOverheadNs, cal.model.stepOverheadNs);
    EXPECT_EQ(loaded.model.dispatchNsPerLane,
              cal.model.dispatchNsPerLane);
    EXPECT_EQ(loaded.model.parallelEfficiency,
              cal.model.parallelEfficiency);
    EXPECT_EQ(loaded.maxResidual, cal.maxResidual);
    EXPECT_EQ(loaded.gridPoints, cal.gridPoints);
    EXPECT_EQ(loaded.maskNsPerNeuron, cal.maskNsPerNeuron);
    EXPECT_EQ(loaded.providerDeliveryNs, cal.providerDeliveryNs);
}

TEST(Calibration, LoaderRejectsBadDocuments)
{
    auto rejects = [](const std::string &text) {
        const std::string path =
            ::testing::TempDir() + "/bad_cal.json";
        std::ofstream(path) << text;
        CalibrationData out;
        std::string error;
        const bool ok = plan::loadCalibrationFile(path, out, &error);
        EXPECT_FALSE(error.empty() || ok);
        return !ok;
    };
    EXPECT_TRUE(rejects("{\"schema\": \"bogus\"}"));
    EXPECT_TRUE(rejects("{\"schema\": \"flexon-calibration-v1\","
                        " \"version\": \"x\", \"model\": {"
                        "\"dense_ns_per_neuron\": -1}}"));
    EXPECT_TRUE(rejects("not json at all"));
    EXPECT_TRUE(rejects("{\"schema\": \"flexon-calibration-v1\""));

    CalibrationData out;
    std::string error;
    EXPECT_FALSE(plan::loadCalibrationFile(
        ::testing::TempDir() + "/no_such_cal.json", out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Calibration, ValidationGuardsCoefficientRanges)
{
    std::string why;
    EXPECT_TRUE(plan::validateCalibration(plan::builtinCalibration(),
                                          1.0, &why))
        << why;

    CalibrationData cal = plan::builtinCalibration();
    cal.model.parallelEfficiency = 1.5;
    EXPECT_FALSE(plan::validateCalibration(cal, 1.0));

    cal = plan::builtinCalibration();
    cal.model.stepOverheadNs = 0.0;
    EXPECT_FALSE(plan::validateCalibration(cal, 1.0));

    cal = plan::builtinCalibration();
    cal.version.clear();
    EXPECT_FALSE(plan::validateCalibration(cal, 1.0));

    // A recorded residual above the acceptance bound means the sweep
    // was too noisy to trust (the calibrate --check gate).
    cal = plan::builtinCalibration();
    cal.maxResidual = 3.0;
    EXPECT_FALSE(plan::validateCalibration(cal, 2.0, &why));
    EXPECT_TRUE(plan::validateCalibration(cal, 4.0));
}

TEST(Planner, StrategyFlipsAtPredictedCrossover)
{
    // Table-driven: synthetic event/dense cost ratios move the
    // crossover, and the planned strategy must flip with it — event
    // below the hysteresis dead band, adaptive inside it, dense
    // above (or everywhere the event engine is predicted slower).
    const NetworkStats net{1000, 50000}; // K = 50
    struct Case
    {
        double eventFactor;
        double rate;
        Strategy expect;
    };
    // Builtin factor 1: crossover 1/51 ~ 0.0196, dead band
    // (0.0163, 0.0235); factor 10: crossover ~ 0.00196; factor 0.1:
    // crossover ~ 0.196.
    const Case cases[] = {
        {1.0, 0.001, Strategy::EventDriven},
        {1.0, 0.019, Strategy::Adaptive},
        {1.0, 0.1, Strategy::Dense},
        {10.0, 0.0005, Strategy::EventDriven},
        {10.0, 0.002, Strategy::Adaptive},
        {10.0, 0.019, Strategy::Dense},
        {0.1, 0.05, Strategy::EventDriven},
        {0.1, 0.2, Strategy::Adaptive},
        {0.1, 0.5, Strategy::Dense},
    };
    for (const Case &c : cases) {
        const ExecutionPlanner planner(
            syntheticCalibration(c.eventFactor));
        const plan::EnginePlan p = planner.plan(net, c.rate, 1);
        EXPECT_EQ(p.strategy, c.expect)
            << "eventFactor=" << c.eventFactor << " rate=" << c.rate
            << " planned " << plan::strategyName(p.strategy);
        // The prediction backing the choice must be the cheaper one.
        EXPECT_LE(p.predictedStepSec,
                  std::max(p.predictedDenseStepSec,
                           p.predictedEventStepSec));
        EXPECT_EQ(p.calibrationVersion, "test-synthetic");
    }
}

TEST(Planner, PredictionsScaleWithRateAndThreads)
{
    const ExecutionPlanner planner(plan::builtinCalibration());
    const NetworkStats big{1000000, 50000000};
    const NetworkStats tiny{50, 2500};

    // Both engines get more expensive as activity rises.
    EXPECT_LT(planner.predictDenseStepSec(big, 0.01, 1),
              planner.predictDenseStepSec(big, 0.1, 1));
    EXPECT_LT(planner.predictEventStepSec(big, 0.01),
              planner.predictEventStepSec(big, 0.1));

    // A million neurons are worth their worker lanes; fifty neurons
    // are not worth one dispatch.
    EXPECT_LT(planner.predictDenseStepSec(big, 0.02, 4),
              planner.predictDenseStepSec(big, 0.02, 1));
    EXPECT_LT(planner.predictDenseStepSec(tiny, 0.02, 1),
              planner.predictDenseStepSec(tiny, 0.02, 2));
}

TEST(Planner, ThreadChoiceWeighsDispatchAgainstWork)
{
    const ExecutionPlanner planner(plan::builtinCalibration());

    // Small population: every added lane costs more dispatch than
    // its share of the neuron phase saves.
    const NetworkStats tiny{100, 5000};
    EXPECT_EQ(planner.planThreads(tiny, 0.02, 8), 1u);

    // Large population: each lane through the cap clears the 2%
    // improvement bar.
    const NetworkStats big{1000000, 50000000};
    EXPECT_EQ(planner.planThreads(big, 0.02, 8), 8u);

    // The cap is respected, and a zero cap means serial.
    EXPECT_EQ(planner.planThreads(big, 0.02, 3), 3u);
    EXPECT_EQ(planner.planThreads(big, 0.02, 0), 1u);
}

TEST(Planner, PlanIsDeterministic)
{
    // Same calibration + same inputs -> field-identical plans (the
    // reproducibility contract: no clocks, no sampling).
    const CalibrationData cal = syntheticCalibration(2.0);
    const ExecutionPlanner a(cal);
    const ExecutionPlanner b(cal);
    const NetworkStats net{3900, 750000};
    const plan::EnginePlan pa = a.plan(net, 0.007, 4);
    const plan::EnginePlan pb = b.plan(net, 0.007, 4);
    EXPECT_EQ(pa.strategy, pb.strategy);
    EXPECT_EQ(pa.threads, pb.threads);
    EXPECT_EQ(pa.crossoverRate, pb.crossoverRate);
    EXPECT_EQ(pa.predictedStepSec, pb.predictedStepSec);
    EXPECT_EQ(pa.predictedDenseStepSec, pb.predictedDenseStepSec);
    EXPECT_EQ(pa.predictedEventStepSec, pb.predictedEventStepSec);
    EXPECT_EQ(pa.calibrationVersion, pb.calibrationVersion);
}

/** A recurrent LLIF network with background stimulus. */
struct LlifSetup
{
    Network net;
    StimulusGenerator stim{1};
};

LlifSetup
llifNetwork(size_t neurons, double rate, uint64_t seed)
{
    LlifSetup s;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    const size_t pop = s.net.addPopulation("llif", p, neurons);
    Rng rng(seed);
    s.net.connectRandom(pop, pop, 0.05, 0.4, 1, 6, 0, rng);
    s.net.finalize();
    s.stim = StimulusGenerator(seed ^ 0xabcdULL);
    s.stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), rate, 0.8f, 0));
    return s;
}

/**
 * The acceptance contract: running under the planner's choice (for
 * every strategy it can choose, at several thread counts) produces
 * the same spike train as the pinned engines — bit for bit.
 */
TEST(PlanBitIdentity, PlannedStrategiesMatchPinnedEngines)
{
    const uint64_t total = 640;
    for (const size_t threads : {size_t{1}, size_t{3}, size_t{4}}) {
        SimulatorOptions opts;
        opts.recordSpikes = true;
        opts.threads = threads;

        LlifSetup a = llifNetwork(90, 0.05, 13);
        Simulator dense(a.net, a.stim, opts);
        dense.run(total);
        ASSERT_GT(dense.stats().spikes, 0u) << "silent network";

        for (const EngineKind kind :
             {EngineKind::Dense, EngineKind::Event,
              EngineKind::Auto}) {
            LlifSetup b = llifNetwork(90, 0.05, 13);
            AutoEngineOptions autoOpts;
            autoOpts.engine = kind;
            // The default planner (builtin calibration) drives the
            // Auto case; pinned kinds must ignore it entirely.
            AutoSession sim(b.net, b.stim, opts, autoOpts);
            sim.run(total);
            EXPECT_EQ(sim.session().spikeCounts(),
                      dense.spikeCounts())
                << "threads=" << threads << " engine="
                << static_cast<int>(kind);
            EXPECT_EQ(sim.session().stats().spikes,
                      dense.stats().spikes);
        }
    }
}

/**
 * The planner's provenance must flow into the session's plan info
 * (what the run report's plan section is generated from).
 */
TEST(PlanBitIdentity, PlanInfoReachesTheSession)
{
    LlifSetup s = llifNetwork(60, 0.03, 5);
    SimulatorOptions opts;
    AutoEngineOptions autoOpts;
    autoOpts.engine = EngineKind::Auto;
    AutoSession sim(s.net, s.stim, opts, autoOpts);
    const PlanInfo &info = sim.session().planInfo();
    EXPECT_TRUE(info.present);
    EXPECT_EQ(info.calibrationVersion,
              plan::kBuiltinCalibrationVersion);
    EXPECT_FALSE(info.strategy.empty());
    EXPECT_GT(info.predictedStepSec, 0.0);
}

} // namespace
} // namespace flexon
