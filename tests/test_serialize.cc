/**
 * @file
 * Tests for network serialization: exact round-trips of populations,
 * parameters and synapses; format validation; and the end-to-end
 * property that a saved-and-reloaded network reproduces the original
 * simulation bit for bit on the hardware backends.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "nets/table1.hh"
#include "snn/serialize.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

Network
sampleNetwork(uint64_t seed)
{
    Network net;
    const size_t a = net.addPopulation(
        "exc cells", defaultParams(ModelKind::AdEx), 30);
    const size_t b = net.addPopulation(
        "inh", defaultParams(ModelKind::IFCondExpGsfaGrr), 10);
    Rng rng(seed);
    net.connectRandom(a, b, 0.2, 0.3, 1, 9, 0, rng);
    net.connectRandom(b, a, 0.3, -0.8, 2, 4, 1, rng);
    net.finalize();
    return net;
}

TEST(Serialize, RoundTripPreservesStructure)
{
    const Network original = sampleNetwork(5);
    std::stringstream buffer;
    saveNetwork(buffer, original);
    const Network loaded = loadNetwork(buffer);

    ASSERT_EQ(loaded.numPopulations(), original.numPopulations());
    ASSERT_EQ(loaded.numNeurons(), original.numNeurons());
    ASSERT_EQ(loaded.numSynapses(), original.numSynapses());
    EXPECT_EQ(loaded.maxDelay(), original.maxDelay());

    for (size_t p = 0; p < original.numPopulations(); ++p) {
        const Population &orig = original.population(p);
        const Population &got = loaded.population(p);
        EXPECT_EQ(got.name, orig.name);
        EXPECT_EQ(got.count, orig.count);
        EXPECT_EQ(got.params.features, orig.params.features);
        EXPECT_EQ(got.params.numSynapseTypes,
                  orig.params.numSynapseTypes);
        EXPECT_DOUBLE_EQ(got.params.epsM, orig.params.epsM);
        EXPECT_DOUBLE_EQ(got.params.b, orig.params.b);
        EXPECT_DOUBLE_EQ(got.params.vRR, orig.params.vRR);
        EXPECT_EQ(got.params.arSteps, orig.params.arSteps);
        for (size_t i = 0; i < orig.params.numSynapseTypes; ++i) {
            EXPECT_DOUBLE_EQ(got.params.syn[i].epsG,
                             orig.params.syn[i].epsG);
            EXPECT_DOUBLE_EQ(got.params.syn[i].vG,
                             orig.params.syn[i].vG);
        }
    }

    for (uint32_t n = 0; n < original.numNeurons(); ++n) {
        auto o = original.outgoing(n);
        auto l = loaded.outgoing(n);
        ASSERT_EQ(o.size(), l.size()) << "neuron " << n;
        for (size_t i = 0; i < o.size(); ++i) {
            EXPECT_EQ(l[i].target, o[i].target);
            EXPECT_EQ(l[i].weight, o[i].weight);
            EXPECT_EQ(l[i].delay, o[i].delay);
            EXPECT_EQ(l[i].type, o[i].type);
        }
    }
}

TEST(Serialize, ReloadedNetworkSimulatesIdentically)
{
    const Network original = sampleNetwork(11);
    std::stringstream buffer;
    saveNetwork(buffer, original);
    const Network loaded = loadNetwork(buffer);

    auto run = [](const Network &net) {
        StimulusGenerator stim(3);
        stim.addSource(StimulusSource::poisson(
            0, static_cast<uint32_t>(net.numNeurons()), 0.05, 0.5f,
            0));
        SimulatorOptions opts;
        opts.backend = BackendKind::Folded;
        opts.recordSpikes = true;
        Simulator sim(net, stim, opts);
        sim.run(1500);
        return sim.spikeEvents();
    };
    const auto a = run(original);
    const auto b = run(loaded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].step, b[i].step);
        EXPECT_EQ(a[i].neuron, b[i].neuron);
    }
    EXPECT_GT(a.size(), 0u);
}

TEST(Serialize, FuzzedNetworksRoundTripExactly)
{
    // Randomized finalized networks: random population mix (every
    // model kind reachable), random counts, perturbed double
    // parameters (stressing the 17-digit encoding with values that
    // have no short decimal form), random wiring. Each must round
    // trip exactly — structural equality and a byte-identical
    // re-serialization.
    Rng fuzz(0xf00dULL);
    for (int iter = 0; iter < 25; ++iter) {
        Network net;
        const size_t numPops = 1 + fuzz.uniformInt(4);
        for (size_t p = 0; p < numPops; ++p) {
            const auto kind = static_cast<ModelKind>(
                fuzz.uniformInt(numModels));
            NeuronParams params = defaultParams(kind);
            // Perturb continuous parameters with full-entropy
            // doubles; keep them positive and sane.
            params.epsM *= 1.0 + 0.25 * fuzz.uniform();
            params.vLeak *= 1.0 + 0.25 * fuzz.uniform();
            for (size_t t = 0; t < params.numSynapseTypes; ++t)
                params.syn[t].epsG *= 1.0 + 0.25 * fuzz.uniform();
            net.addPopulation("pop" + std::to_string(p), params,
                              1 + fuzz.uniformInt(40));
        }
        for (size_t e = 0; e < numPops + 2; ++e) {
            const size_t from = fuzz.uniformInt(numPops);
            const size_t to = fuzz.uniformInt(numPops);
            const float w = static_cast<float>(
                fuzz.uniform(-1.0, 1.0));
            const auto dmin =
                static_cast<uint8_t>(1 + fuzz.uniformInt(4));
            const auto dmax = static_cast<uint8_t>(
                dmin + fuzz.uniformInt(10));
            net.connectRandom(from, to, 0.1 + 0.3 * fuzz.uniform(),
                              w, dmin, dmax,
                              static_cast<uint8_t>(
                                  fuzz.uniformInt(2)),
                              fuzz);
        }
        net.finalize();

        std::stringstream first;
        saveNetwork(first, net);
        const Network loaded = loadNetwork(first);

        ASSERT_EQ(loaded.numPopulations(), net.numPopulations())
            << "iter " << iter;
        ASSERT_EQ(loaded.numNeurons(), net.numNeurons())
            << "iter " << iter;
        ASSERT_EQ(loaded.numSynapses(), net.numSynapses())
            << "iter " << iter;

        // Byte-identical re-serialization subsumes per-field exact
        // equality: any drifting double, weight, delay or name would
        // change the text.
        std::stringstream second;
        saveNetwork(second, loaded);
        ASSERT_EQ(first.str(), second.str()) << "iter " << iter;
    }
}

TEST(Serialize, TableOneBenchmarkRoundTrips)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Muller"), 20.0, 7);
    std::stringstream buffer;
    saveNetwork(buffer, inst.network);
    const Network loaded = loadNetwork(buffer);
    EXPECT_EQ(loaded.numNeurons(), inst.network.numNeurons());
    EXPECT_EQ(loaded.numSynapses(), inst.network.numSynapses());
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream buffer("not-a-network v1\n");
    EXPECT_DEATH(loadNetwork(buffer), "magic");
}

TEST(Serialize, RejectsWrongVersion)
{
    std::stringstream buffer("flexon-network v999\npopulations 0\n");
    EXPECT_DEATH(loadNetwork(buffer), "version");
}

TEST(Serialize, RejectsTruncatedFile)
{
    const Network original = sampleNetwork(13);
    std::stringstream buffer;
    saveNetwork(buffer, original);
    std::string text = buffer.str();
    text.resize(text.size() / 2);
    std::stringstream truncated(text);
    EXPECT_DEATH(loadNetwork(truncated), "malformed");
}

TEST(Serialize, RefusesUnfinalizedNetwork)
{
    Network net;
    net.addPopulation("a", defaultParams(ModelKind::LIF), 4);
    std::stringstream buffer;
    EXPECT_DEATH(saveNetwork(buffer, net), "finalized");
}

} // namespace
} // namespace flexon
