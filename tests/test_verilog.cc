/**
 * @file
 * Tests for the Verilog emitter: the ROM encoding round-trips bit
 * for bit, the generated text has the expected structure for every
 * Table III model, and the embedded constants match the compiled
 * program.
 */

#include <gtest/gtest.h>

#include "backend/verilog.hh"
#include "common/random.hh"

namespace flexon {
namespace {

TEST(ControlWord, RoundTripsAllFields)
{
    MicroOp op;
    op.a = MulSel::Tmp;
    op.ca = 13;
    op.b = AddSel::Input;
    op.cb = 5;
    op.type = 2;
    op.s = StateVar::G3;
    op.exp = true;
    op.sWr = true;
    op.vAcc = false;
    const MicroOp back = unpackControlWord(packControlWord(op));
    EXPECT_EQ(back.a, op.a);
    EXPECT_EQ(back.ca, op.ca);
    EXPECT_EQ(back.b, op.b);
    EXPECT_EQ(back.cb, op.cb);
    EXPECT_EQ(back.type, op.type);
    EXPECT_EQ(back.s, op.s);
    EXPECT_EQ(back.exp, op.exp);
    EXPECT_EQ(back.sWr, op.sWr);
    EXPECT_EQ(back.vAcc, op.vAcc);
}

TEST(ControlWord, RandomizedRoundTrip)
{
    Rng rng(55);
    for (int trial = 0; trial < 2000; ++trial) {
        MicroOp op;
        op.a = static_cast<MulSel>(rng.uniformInt(2));
        op.ca = static_cast<uint8_t>(rng.uniformInt(16));
        op.b = static_cast<AddSel>(rng.uniformInt(4));
        op.cb = static_cast<uint8_t>(rng.uniformInt(8));
        op.type = static_cast<uint8_t>(rng.uniformInt(4));
        op.s = static_cast<StateVar>(rng.uniformInt(numStateVars));
        op.exp = rng.bernoulli(0.5);
        op.sWr = rng.bernoulli(0.5);
        op.vAcc = rng.bernoulli(0.5);

        const uint32_t word = packControlWord(op);
        ASSERT_LT(word, 1u << controlWordBits);
        const MicroOp back = unpackControlWord(word);
        ASSERT_EQ(packControlWord(back), word);
    }
}

TEST(ControlWord, EveryCompiledOpFitsTheWord)
{
    for (ModelKind kind : allModels()) {
        const CompiledNeuron c = compileModel(kind);
        for (const MicroOp &op : c.program.ops()) {
            const uint32_t word = packControlWord(op);
            ASSERT_LT(word, 1u << controlWordBits);
            const MicroOp back = unpackControlWord(word);
            EXPECT_EQ(back.a, op.a);
            EXPECT_EQ(back.ca, op.ca);
            EXPECT_EQ(back.b, op.b);
            EXPECT_EQ(back.cb, op.cb);
            EXPECT_EQ(back.s, op.s);
        }
    }
}

TEST(Verilog, ModuleStructure)
{
    const CompiledNeuron adex = compileModel(ModelKind::AdEx);
    const std::string rtl = emitFoldedVerilog(adex, "adex_neuron");
    EXPECT_NE(rtl.find("module adex_neuron"), std::string::npos);
    EXPECT_NE(rtl.find("endmodule"), std::string::npos);
    EXPECT_NE(rtl.find("localparam integer PROG_LEN = 11;"),
              std::string::npos);
    EXPECT_NE(rtl.find("fast_exp_q10_22"), std::string::npos);
    EXPECT_NE(rtl.find("EXD+COBE+REV+EXI+ADT+SBT+AR"),
              std::string::npos);
}

TEST(Verilog, RomDepthMatchesProgram)
{
    for (ModelKind kind : {ModelKind::LIF, ModelKind::DLIF,
                           ModelKind::IFCondExpGsfaGrr}) {
        const CompiledNeuron c = compileModel(kind);
        const std::string rtl = emitFoldedVerilog(c);
        size_t entries = 0;
        size_t pos = 0;
        while ((pos = rtl.find("ucode[", pos)) != std::string::npos) {
            ++entries;
            ++pos;
        }
        // One declaration reference plus one initializer per op.
        EXPECT_EQ(entries, 1u + c.programLength()) << modelName(kind);
    }
}

TEST(Verilog, ConstantsEncodedAsRawHex)
{
    const CompiledNeuron lif = compileModel(ModelKind::LIF);
    const std::string rtl = emitFoldedVerilog(lif);
    // eps'_m = 0.99 in Q10.22.
    const Fix eps_mp = lif.program.mulConstants().at(0);
    char expected[32];
    std::snprintf(expected, sizeof(expected), "32'h%08x",
                  static_cast<uint32_t>(eps_mp.raw() & 0xffffffff));
    EXPECT_NE(rtl.find(expected), std::string::npos);
    // Threshold 1.0 = 0x00400000.
    EXPECT_NE(rtl.find("THRESHOLD = 32'h00400000"),
              std::string::npos);
}

TEST(Verilog, CommentsCarryTableVSemantics)
{
    const CompiledNeuron qif = compileModel(ModelKind::QIF);
    const std::string rtl = emitFoldedVerilog(qif);
    EXPECT_NE(rtl.find("v' += tmp*v"), std::string::npos);
}

TEST(Testbench, GoldenVectorsCoverEveryStep)
{
    const CompiledNeuron lif = compileModel(ModelKind::LIF);
    const std::string tb = emitFoldedTestbench(lif, 50, 7);
    EXPECT_NE(tb.find("localparam integer STEPS = 50;"),
              std::string::npos);
    size_t vexp = 0, spk = 0, vin = 0;
    for (size_t pos = 0;
         (pos = tb.find("vec_vexp[", pos)) != std::string::npos;
         ++pos)
        ++vexp;
    for (size_t pos = 0;
         (pos = tb.find("vec_spk[", pos)) != std::string::npos;
         ++pos)
        ++spk;
    for (size_t pos = 0;
         (pos = tb.find("vec_in[", pos)) != std::string::npos; ++pos)
        ++vin;
    // Declaration + one initializer per step + the checking-loop
    // reference(s).
    EXPECT_EQ(vexp, 2u + 50u);
    EXPECT_EQ(spk, 2u + 50u);
    EXPECT_EQ(vin, 4u + 4u * 50u);
}

TEST(Testbench, DrivenNeuronHasSpikesInTheVectors)
{
    const CompiledNeuron dlif = compileModel(ModelKind::DLIF);
    const std::string tb = emitFoldedTestbench(dlif, 3000, 3);
    EXPECT_NE(tb.find("= 1'b1;"), std::string::npos)
        << "expected at least one golden spike";
    EXPECT_NE(tb.find("PASS"), std::string::npos);
    EXPECT_NE(tb.find("MISMATCH"), std::string::npos);
}

TEST(Testbench, InstantiatesTheRequestedModule)
{
    const CompiledNeuron lif = compileModel(ModelKind::LIF);
    const std::string tb = emitFoldedTestbench(lif, 10, 1, "my_core");
    EXPECT_NE(tb.find("module my_core_tb;"), std::string::npos);
    EXPECT_NE(tb.find("my_core dut"), std::string::npos);
}

TEST(Testbench, DeterministicForSameSeed)
{
    const CompiledNeuron lif = compileModel(ModelKind::LIF);
    EXPECT_EQ(emitFoldedTestbench(lif, 100, 9),
              emitFoldedTestbench(lif, 100, 9));
    EXPECT_NE(emitFoldedTestbench(lif, 100, 9),
              emitFoldedTestbench(lif, 100, 10));
}

TEST(FastExpRtl, EmitsTheInstantiatedUnit)
{
    const std::string rtl = emitFastExpVerilog();
    EXPECT_NE(rtl.find("module fast_exp_q10_22"), std::string::npos);
    EXPECT_NE(rtl.find("$bitstoreal"), std::string::npos);
    // The Schraudolph constants must match the C++ model.
    EXPECT_NE(rtl.find("1048576.0 / 0.6931471805599453"),
              std::string::npos);
    EXPECT_NE(rtl.find("1072693248.0 - 60801.0"), std::string::npos);
    // Q10.22 scale factor.
    EXPECT_NE(rtl.find("4194304.0"), std::string::npos);
}

} // namespace
} // namespace flexon
