/**
 * @file
 * Kernel-equivalence suite: the per-population batch kernels
 * (flexon/kernel.hh) must be bit-identical to stepping scalar
 * FlexonNeuron instances — for every one of the 12 features, for every
 * Table III model (covering the Table I networks), through both the
 * fused double-input path and the legacy pre-scaled Fix path, at host
 * thread counts 1, 3, and 4 (uneven chunk boundaries included).
 *
 * The scalar side reproduces the pre-kernel pipeline exactly: inputs
 * are pre-scaled per neuron with FlexonConfig::scaleWeight (CUB
 * merging all synapse-type slots into one signed input) and fed to
 * FlexonNeuron::step. Spikes, post-step membrane potentials, and
 * preResetV are compared raw-bit for raw-bit on every step.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "flexon/array.hh"
#include "flexon/config.hh"
#include "flexon/neuron.hh"
#include "models/reference_batch.hh"
#include "models/reference_neuron.hh"

namespace flexon {
namespace {

constexpr size_t kNeuronsPerPop = 41; // not a multiple of any lane count
constexpr size_t kSteps = 200;

/** Valid parameters exercising every field a feature set can touch. */
NeuronParams
makeParams(FeatureSet features)
{
    NeuronParams p;
    p.features = features;
    p.numSynapseTypes = features.has(Feature::CUB) ? 1 : 3;
    p.epsM = 0.05;
    p.vLeak = 0.015;
    for (size_t t = 0; t < maxSynapseTypes; ++t) {
        p.syn[t].epsG = 0.10 + 0.05 * static_cast<double>(t);
        p.syn[t].vG = (t % 2 == 0) ? 1.2 : -0.4;
    }
    p.deltaT = 0.2;
    p.vCrit = 0.5;
    p.vFiring = 1.3;
    p.epsW = 0.05;
    p.a = 0.02;
    p.vW = 0.1;
    p.b = 0.05;
    p.arSteps = features.has(Feature::AR) ? 3 : 0;
    p.epsR = 0.1;
    p.vRR = -0.3;
    p.vAR = 0.2;
    p.qR = 0.04;
    EXPECT_EQ(p.validate(), "");
    return p;
}

/**
 * Sparse reference-unit input for `n` neurons, ~25% active slots.
 * Amplitudes are large enough that epsilon_m-scaled drive crosses the
 * firing threshold (exercising reset, refractory, and adaptation
 * paths), with an inhibitory tail for sign coverage.
 */
std::vector<double>
makeInput(Rng &rng, size_t n)
{
    std::vector<double> input(n * maxSynapseTypes, 0.0);
    for (double &slot : input) {
        if (rng.bernoulli(0.25))
            slot = rng.uniform(-1.0, 6.0);
    }
    return input;
}

/**
 * Pre-scale one neuron's input row exactly as the pre-kernel
 * HardwareInputScaler did: CUB merges all slots into one signed
 * input; otherwise each slot is scaled independently.
 */
std::array<Fix, maxSynapseTypes>
scaleRow(const FlexonConfig &c, const double *row)
{
    std::array<Fix, maxSynapseTypes> out{};
    if (c.features.has(Feature::CUB)) {
        double sum = 0.0;
        for (size_t t = 0; t < maxSynapseTypes; ++t)
            sum += row[t];
        out[0] = c.scaleWeight(sum);
    } else {
        for (size_t t = 0; t < maxSynapseTypes; ++t)
            out[t] = c.scaleWeight(row[t]);
    }
    return out;
}

/**
 * Run `kSteps` of one population through the scalar neurons, the
 * fused double-input kernel path, and the legacy pre-scaled Fix
 * path, asserting bit-identical spikes / v / preResetV throughout.
 */
void
expectKernelMatchesScalar(const NeuronParams &params, size_t threads)
{
    SCOPED_TRACE(testing::Message()
                 << "features=" << params.features.toString()
                 << " threads=" << threads);
    const FlexonConfig config = FlexonConfig::fromParams(params);
    const size_t n = kNeuronsPerPop;

    std::vector<FlexonNeuron> scalar(n, FlexonNeuron(config));

    FlexonArray fused(/*width=*/5);
    fused.setHostThreads(threads);
    fused.addPopulation(config, n);

    FlexonArray scaled(/*width=*/5);
    scaled.setHostThreads(threads);
    scaled.addPopulation(config, n);

    Rng rng(0x5eed + threads * 0); // same stimulus at every thread count
    std::vector<uint8_t> firedFused, firedScaled;
    std::vector<Fix> scaledInput(n * maxSynapseTypes);

    size_t spikes = 0;
    for (size_t step = 0; step < kSteps; ++step) {
        const std::vector<double> input = makeInput(rng, n);

        for (size_t i = 0; i < n; ++i) {
            const auto row =
                scaleRow(config, input.data() + i * maxSynapseTypes);
            for (size_t t = 0; t < maxSynapseTypes; ++t)
                scaledInput[i * maxSynapseTypes + t] = row[t];
        }

        fused.step(std::span<const double>(input), firedFused);
        scaled.step(std::span<const Fix>(scaledInput), firedScaled);

        for (size_t i = 0; i < n; ++i) {
            const bool expect = scalar[i].step(std::span<const Fix>(
                scaledInput.data() + i * maxSynapseTypes,
                maxSynapseTypes));
            spikes += expect;
            ASSERT_EQ(firedFused[i] != 0, expect)
                << "step " << step << " neuron " << i << " (fused)";
            ASSERT_EQ(firedScaled[i] != 0, expect)
                << "step " << step << " neuron " << i << " (scaled)";
            const FlexonState golden = scalar[i].state();
            ASSERT_EQ(fused.neuron(i).state().v.raw(),
                      golden.v.raw())
                << "step " << step << " neuron " << i << " (fused)";
            ASSERT_EQ(scaled.neuron(i).state().v.raw(),
                      golden.v.raw())
                << "step " << step << " neuron " << i << " (scaled)";
            ASSERT_EQ(fused.neuron(i).preResetV().raw(),
                      scalar[i].preResetV().raw())
                << "step " << step << " neuron " << i << " (fused)";
            ASSERT_EQ(scaled.neuron(i).preResetV().raw(),
                      scalar[i].preResetV().raw())
                << "step " << step << " neuron " << i << " (scaled)";
        }
    }
    // The stimulus must actually drive activity, or the comparison
    // proves nothing.
    EXPECT_GT(spikes, 0u);
}

const std::array<size_t, 3> kThreadCounts = {1, 3, 4};

/**
 * Minimal valid host set for each single feature: a membrane-decay
 * feature plus an accumulation feature is the smallest legal config,
 * so each feature under test rides with EXD and/or CUB.
 */
FeatureSet
singleFeatureHost(Feature f)
{
    using enum Feature;
    switch (f) {
      case EXD: return FeatureSet{EXD, CUB};
      case LID: return FeatureSet{LID, CUB};
      case CUB: return FeatureSet{EXD, CUB};
      case COBE: return FeatureSet{EXD, COBE};
      case COBA: return FeatureSet{EXD, COBA};
      case REV: return FeatureSet{EXD, COBE, REV};
      case QDI: return FeatureSet{EXD, CUB, QDI};
      case EXI: return FeatureSet{EXD, CUB, EXI};
      case ADT: return FeatureSet{EXD, CUB, ADT};
      case SBT: return FeatureSet{EXD, CUB, SBT};
      case AR: return FeatureSet{EXD, CUB, AR};
      case RR: return FeatureSet{EXD, CUB, RR};
      default: return FeatureSet{};
    }
}

TEST(KernelEquivalence, EverySingleFeatureBitIdentical)
{
    for (size_t f = 0; f < numFeatures; ++f) {
        const Feature feature = static_cast<Feature>(f);
        const NeuronParams params =
            makeParams(singleFeatureHost(feature));
        for (size_t threads : kThreadCounts)
            expectKernelMatchesScalar(params, threads);
    }
}

TEST(KernelEquivalence, EveryModelBitIdentical)
{
    for (ModelKind model : allModels()) {
        SCOPED_TRACE(modelName(model));
        const NeuronParams params = defaultParams(model);
        for (size_t threads : kThreadCounts)
            expectKernelMatchesScalar(params, threads);
    }
}

TEST(KernelEquivalence, SingleFeatureHostsHitSpecializedKernels)
{
    for (size_t f = 0; f < numFeatures; ++f) {
        const Feature feature = static_cast<Feature>(f);
        const NeuronParams params =
            makeParams(singleFeatureHost(feature));
        FlexonArray array;
        array.addPopulation(FlexonConfig::fromParams(params),
                            kNeuronsPerPop);
        EXPECT_TRUE(array.populationSpecialized(0))
            << featureName(feature);
    }
}

TEST(KernelEquivalence, ModelsHitSpecializedKernels)
{
    for (ModelKind model : allModels()) {
        FlexonArray array;
        array.addPopulation(
            FlexonConfig::fromParams(defaultParams(model)),
            kNeuronsPerPop);
        EXPECT_TRUE(array.populationSpecialized(0))
            << modelName(model);
    }
}

TEST(KernelEquivalence, GenericFallbackStillBitIdentical)
{
    // A valid combination deliberately absent from the dispatch
    // table: it must fall back to the generic kernel and remain
    // bit-identical to the scalar path.
    using enum Feature;
    const NeuronParams params =
        makeParams(FeatureSet{EXD, CUB, QDI, ADT, AR});
    FlexonArray array;
    array.addPopulation(FlexonConfig::fromParams(params),
                        kNeuronsPerPop);
    EXPECT_FALSE(array.populationSpecialized(0));
    for (size_t threads : kThreadCounts)
        expectKernelMatchesScalar(params, threads);
}

TEST(KernelEquivalence, MultiPopulationChunksRespectBoundaries)
{
    // Three populations with deliberately uneven sizes so that
    // parallelFor chunk boundaries fall inside populations; the
    // fused path must still match per-population scalar neurons.
    struct Pop
    {
        ModelKind model;
        size_t count;
    };
    const std::array<Pop, 3> pops = {
        Pop{ModelKind::LIF, 7},
        Pop{ModelKind::AdEx, 13},
        Pop{ModelKind::DLIF, 5},
    };

    for (size_t threads : kThreadCounts) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        FlexonArray array(/*width=*/4);
        array.setHostThreads(threads);
        std::vector<FlexonConfig> configs;
        std::vector<FlexonNeuron> scalar;
        size_t n = 0;
        for (const Pop &pop : pops) {
            const FlexonConfig c =
                FlexonConfig::fromParams(defaultParams(pop.model));
            array.addPopulation(c, pop.count);
            for (size_t i = 0; i < pop.count; ++i)
                scalar.emplace_back(c);
            configs.push_back(c);
            n += pop.count;
        }

        Rng rng(0xabcd);
        std::vector<uint8_t> fired;
        for (size_t step = 0; step < kSteps; ++step) {
            const std::vector<double> input = makeInput(rng, n);
            array.step(std::span<const double>(input), fired);

            size_t i = 0;
            for (size_t p = 0; p < pops.size(); ++p) {
                for (size_t k = 0; k < pops[p].count; ++k, ++i) {
                    const auto row = scaleRow(
                        configs[p],
                        input.data() + i * maxSynapseTypes);
                    const bool expect = scalar[i].step(
                        std::span<const Fix>(row.data(), row.size()));
                    ASSERT_EQ(fired[i] != 0, expect)
                        << "step " << step << " neuron " << i;
                    ASSERT_EQ(array.neuron(i).state().v.raw(),
                              scalar[i].state().v.raw())
                        << "step " << step << " neuron " << i;
                }
            }
        }
    }
}

TEST(KernelEquivalence, ReferenceBatchMatchesScalarReference)
{
    // The reference backend's SoA batches carry the same bit-exactness
    // contract against the scalar golden model (exact double ops).
    for (ModelKind model : allModels()) {
        SCOPED_TRACE(modelName(model));
        const NeuronParams params = defaultParams(model);
        const size_t n = 17;

        ReferenceBatch batch(params, n);
        std::vector<ReferenceNeuron> scalar(n, ReferenceNeuron(params));

        Rng rng(0x1234);
        std::vector<uint8_t> fired(n, 0);
        for (size_t step = 0; step < 100; ++step) {
            const std::vector<double> input = makeInput(rng, n);
            batch.step(input.data(), fired.data(), 0, n);
            for (size_t i = 0; i < n; ++i) {
                const bool expect = scalar[i].step(std::span<const double>(
                    input.data() + i * maxSynapseTypes,
                    params.numSynapseTypes));
                ASSERT_EQ(fired[i] != 0, expect)
                    << "step " << step << " neuron " << i;
                ASSERT_EQ(batch.membrane(i), scalar[i].state().v)
                    << "step " << step << " neuron " << i;
                ASSERT_EQ(batch.preResetV(i), scalar[i].preResetV())
                    << "step " << step << " neuron " << i;
            }
        }
    }
}

TEST(KernelEquivalence, ViewMaterializesFullState)
{
    const NeuronParams params = defaultParams(ModelKind::AdEx);
    const FlexonConfig config = FlexonConfig::fromParams(params);
    const size_t n = 9;

    FlexonArray array;
    array.addPopulation(config, n);
    std::vector<FlexonNeuron> scalar(n, FlexonNeuron(config));

    Rng rng(0x77);
    std::vector<uint8_t> fired;
    for (size_t step = 0; step < 50; ++step) {
        const std::vector<double> input = makeInput(rng, n);
        array.step(std::span<const double>(input), fired);
        for (size_t i = 0; i < n; ++i) {
            const auto row =
                scaleRow(config, input.data() + i * maxSynapseTypes);
            scalar[i].step(std::span<const Fix>(row.data(), row.size()));
        }
    }
    for (size_t i = 0; i < n; ++i) {
        const FlexonState got = array.neuron(i).state();
        const FlexonState want = scalar[i].state();
        EXPECT_EQ(got.v.raw(), want.v.raw());
        EXPECT_EQ(got.w.raw(), want.w.raw());
        EXPECT_EQ(got.r.raw(), want.r.raw());
        EXPECT_EQ(got.cnt, want.cnt);
        for (size_t t = 0; t < config.numSynapseTypes; ++t) {
            EXPECT_EQ(got.y[t].raw(), want.y[t].raw());
            EXPECT_EQ(got.g[t].raw(), want.g[t].raw());
        }
    }
}

TEST(KernelEquivalence, ResetRestoresRestingState)
{
    const NeuronParams params = defaultParams(ModelKind::Izhikevich);
    const FlexonConfig config = FlexonConfig::fromParams(params);
    const size_t n = 6;

    FlexonArray array;
    array.addPopulation(config, n);
    Rng rng(0x99);
    std::vector<uint8_t> fired;
    for (size_t step = 0; step < 20; ++step) {
        const std::vector<double> input = makeInput(rng, n);
        array.step(std::span<const double>(input), fired);
    }
    array.resetState();
    for (size_t i = 0; i < n; ++i) {
        const FlexonState s = array.neuron(i).state();
        EXPECT_EQ(s.v.raw(), Fix::zero().raw());
        EXPECT_EQ(s.w.raw(), Fix::zero().raw());
        EXPECT_EQ(s.cnt, 0u);
    }
}

} // namespace
} // namespace flexon
