/**
 * @file
 * Tests for the spike-train analysis library: ISI statistics,
 * population rates, Fano factor, coincidence metrics, raster
 * rendering, and the cross-backend comparison used to quantify
 * hardware/reference agreement.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/raster.hh"
#include "analysis/trace_plot.hh"
#include "analysis/spike_train.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "nets/table1.hh"

namespace flexon {
namespace {

TEST(TrainStats, RegularTrain)
{
    std::vector<uint64_t> times;
    for (uint64_t t = 10; t < 1000; t += 10)
        times.push_back(t);
    const TrainStats s = trainStats(times, 1000);
    EXPECT_EQ(s.spikes, times.size());
    EXPECT_DOUBLE_EQ(s.meanIsi, 10.0);
    EXPECT_NEAR(s.cvIsi, 0.0, 1e-12);
    EXPECT_NEAR(s.rate, 0.099, 0.001);
}

TEST(TrainStats, PoissonTrainHasUnitCv)
{
    Rng rng(5);
    std::vector<uint64_t> times;
    for (uint64_t t = 0; t < 200000; ++t)
        if (rng.bernoulli(0.02))
            times.push_back(t);
    const TrainStats s = trainStats(times, 200000);
    EXPECT_NEAR(s.cvIsi, 1.0, 0.05);
    EXPECT_NEAR(s.rate, 0.02, 0.002);
}

TEST(TrainStats, DegenerateTrains)
{
    EXPECT_EQ(trainStats({}, 100).spikes, 0u);
    EXPECT_EQ(trainStats({}, 100).meanIsi, 0.0);
    const TrainStats one = trainStats({42}, 100);
    EXPECT_EQ(one.spikes, 1u);
    EXPECT_EQ(one.meanIsi, 0.0);
}

TEST(Analysis, GroupByNeuronSortsTimes)
{
    std::vector<SpikeEvent> events = {
        {5, 1}, {2, 0}, {9, 1}, {1, 1}, {7, 0}};
    const auto trains = groupByNeuron(events, 3);
    ASSERT_EQ(trains.size(), 3u);
    EXPECT_EQ(trains[0], (std::vector<uint64_t>{2, 7}));
    EXPECT_EQ(trains[1], (std::vector<uint64_t>{1, 5, 9}));
    EXPECT_TRUE(trains[2].empty());
}

TEST(Analysis, PopulationRateBins)
{
    // 2 neurons, 100 steps, all spikes in the first 10-step bin.
    std::vector<SpikeEvent> events = {{0, 0}, {3, 1}, {9, 0}};
    const auto rate = populationRate(events, 2, 100, 10);
    ASSERT_EQ(rate.size(), 10u);
    EXPECT_DOUBLE_EQ(rate[0], 3.0 / (2.0 * 10.0));
    for (size_t b = 1; b < rate.size(); ++b)
        EXPECT_DOUBLE_EQ(rate[b], 0.0);
}

TEST(Analysis, FanoFactorPoissonNearOne)
{
    Rng rng(11);
    std::vector<SpikeEvent> events;
    for (uint64_t t = 0; t < 100000; ++t)
        if (rng.bernoulli(0.05))
            events.push_back({t, 0});
    EXPECT_NEAR(fanoFactor(events, 100000, 100), 1.0, 0.15);
}

TEST(Analysis, FanoFactorBurstyAboveOne)
{
    // All spikes crammed into every tenth window.
    std::vector<SpikeEvent> events;
    for (uint64_t t = 0; t < 100000; ++t)
        if ((t / 100) % 10 == 0 && t % 2 == 0)
            events.push_back({t, 0});
    EXPECT_GT(fanoFactor(events, 100000, 100), 3.0);
}

TEST(Coincidence, IdenticalTrainsScoreOne)
{
    const std::vector<uint64_t> a = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(coincidence(a, a, 0), 1.0);
}

TEST(Coincidence, ToleranceWindowMatches)
{
    const std::vector<uint64_t> a = {10, 20, 30};
    const std::vector<uint64_t> b = {12, 19, 33};
    EXPECT_DOUBLE_EQ(coincidence(a, b, 0), 0.0);
    EXPECT_NEAR(coincidence(a, b, 2), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(coincidence(a, b, 3), 1.0);
}

TEST(Coincidence, EmptyTrains)
{
    EXPECT_DOUBLE_EQ(coincidence({}, {}, 5), 1.0);
    EXPECT_DOUBLE_EQ(coincidence({1, 2}, {}, 5), 0.0);
}

TEST(Coincidence, DisjointTrainsScoreZero)
{
    EXPECT_DOUBLE_EQ(
        coincidence({0, 100, 200}, {50, 150, 250}, 10), 0.0);
}

TEST(CompareRuns, HardwareBackendsAgreeNearPerfectly)
{
    // Quantify the paper's cross-validation: the same Vogels-Abbott
    // instance on the reference vs the folded-Flexon backend.
    auto record = [](BackendKind kind) {
        BenchmarkInstance inst =
            buildBenchmark(findBenchmark("Vogels-Abbott"), 40.0, 9);
        SimulatorOptions opts;
        opts.backend = kind;
        opts.recordSpikes = true;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(1500);
        return std::make_pair(sim.spikeEvents(),
                              inst.network.numNeurons());
    };
    const auto [ref, n] = record(BackendKind::Reference);
    const auto [hw, n2] = record(BackendKind::Folded);
    ASSERT_EQ(n, n2);
    // Chaotic recurrent dynamics diverge in exact timing, but the
    // trains must stay strongly coincident at a 20-step (2 ms)
    // tolerance.
    EXPECT_GT(compareRuns(ref, hw, n, 20), 0.6);
    // And the folded backend matches the baseline Flexon exactly.
    const auto [flx, n3] = record(BackendKind::Flexon);
    ASSERT_EQ(n, n3);
    EXPECT_DOUBLE_EQ(compareRuns(flx, hw, n, 0), 1.0);
}

TEST(Raster, RendersExpectedGlyphs)
{
    std::vector<SpikeEvent> events = {{0, 0}, {1, 0}, {50, 1}};
    RasterOptions opts;
    opts.columns = 10;
    opts.maxRows = 2;
    const std::string r = renderRaster(events, 2, 100, opts);
    // Neuron 0: two spikes in the first bin -> '#'; neuron 1: one
    // spike mid-run -> '|'.
    const size_t line_break = r.find('\n');
    ASSERT_NE(line_break, std::string::npos);
    EXPECT_NE(r.substr(0, line_break).find('#'), std::string::npos);
    EXPECT_NE(r.substr(line_break).find('|'), std::string::npos);
}

TEST(Raster, SubsamplesLargePopulations)
{
    std::vector<SpikeEvent> events;
    RasterOptions opts;
    opts.maxRows = 5;
    const std::string r = renderRaster(events, 1000, 100, opts);
    size_t rows = 0;
    for (char c : r)
        rows += (c == '\n');
    EXPECT_EQ(rows, 5u);
}

TEST(Raster, SparklineScalesToMax)
{
    const std::string s =
        renderRateSparkline({0.0, 0.5, 1.0});
    EXPECT_FALSE(s.empty());
    // The last bin is the maximum -> full block.
    EXPECT_NE(s.find("█"), std::string::npos);
}

TEST(Raster, CsvFormat)
{
    std::ostringstream oss;
    writeSpikesCsv(oss, {{3, 7}, {4, 1}});
    EXPECT_EQ(oss.str(), "step,neuron\n3,7\n4,1\n");
}

TEST(TracePlot, SingleTraceSpansRange)
{
    std::vector<double> ramp;
    for (int i = 0; i < 100; ++i)
        ramp.push_back(static_cast<double>(i));
    TracePlotOptions opts;
    opts.columns = 20;
    opts.rows = 5;
    opts.yMin = 0.0;
    opts.yMax = 99.0; // fixed range so the border labels are exact
    const std::string plot = renderTrace(ramp, {}, opts);
    // The auto-scaled range labels appear on the border rows.
    EXPECT_NE(plot.find("99.000"), std::string::npos);
    EXPECT_NE(plot.find("0.000"), std::string::npos);
    EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(TracePlot, OverlayUsesDistinctGlyphsAndLegend)
{
    const std::vector<double> up = {0.0, 1.0};
    const std::vector<double> down = {1.0, 0.0};
    const std::string plot =
        renderTraces({up, down}, {"rising", "falling"});
    EXPECT_NE(plot.find('a'), std::string::npos);
    EXPECT_NE(plot.find('b'), std::string::npos);
    EXPECT_NE(plot.find("a=rising"), std::string::npos);
    EXPECT_NE(plot.find("b=falling"), std::string::npos);
}

TEST(TracePlot, EventsMarkedOnTopRow)
{
    std::vector<double> flat(100, 0.5);
    TracePlotOptions opts;
    opts.columns = 10;
    const std::string plot = renderTrace(flat, {0, 99}, opts);
    const std::string first = plot.substr(0, plot.find('\n'));
    EXPECT_NE(first.find("spikes"), std::string::npos);
    EXPECT_EQ(std::count(first.begin(), first.end(), '*'), 2);
}

TEST(TracePlot, FixedRangeClamps)
{
    std::vector<double> wild = {-10.0, 0.5, 10.0};
    TracePlotOptions opts;
    opts.yMin = 0.0;
    opts.yMax = 1.0;
    opts.columns = 3;
    opts.rows = 4;
    // Must not crash; out-of-range samples clamp to the borders.
    const std::string plot = renderTrace(wild, {}, opts);
    EXPECT_NE(plot.find("1.000"), std::string::npos);
}

TEST(TracePlot, ConstantTraceAvoidsZeroRange)
{
    std::vector<double> flat(50, 3.0);
    const std::string plot = renderTrace(flat);
    EXPECT_FALSE(plot.empty());
}

TEST(Science, AsynchronousIrregularStateOnFoldedFlexon)
{
    // The Vogels-Abbott scientific result (the reason the benchmark
    // exists): a sparsely connected conductance E/I network settles
    // into irregular (CV ~ 1), asynchronous (chi^2 << 1) firing —
    // here computed by the folded hardware model.
    Network net;
    const NeuronParams p = defaultParams(ModelKind::DLIF);
    const size_t exc = net.addPopulation("exc", p, 320);
    const size_t inh = net.addPopulation("inh", p, 80);
    Rng rng(2026);
    net.connectRandom(exc, exc, 0.1, 0.06, 1, 6, 0, rng);
    net.connectRandom(exc, inh, 0.1, 0.06, 1, 6, 0, rng);
    net.connectRandom(inh, exc, 0.1, 0.24, 1, 6, 1, rng);
    net.connectRandom(inh, inh, 0.1, 0.24, 1, 6, 1, rng);
    net.finalize();

    StimulusGenerator stim(7);
    stim.addSource(StimulusSource::poisson(0, 400, 0.01, 2.0f, 0));
    SimulatorOptions opts;
    opts.backend = BackendKind::Folded;
    opts.recordSpikes = true;
    Simulator sim(net, stim, opts);
    sim.run(20000);

    const auto trains = groupByNeuron(sim.spikeEvents(), 400);
    Summary cv;
    for (const auto &train : trains) {
        const TrainStats s = trainStats(train, 20000);
        if (s.spikes >= 5)
            cv.add(s.cvIsi);
    }
    EXPECT_GT(sim.meanRate(), 0.003);
    EXPECT_LT(sim.meanRate(), 0.04);
    EXPECT_GT(cv.mean(), 0.7);
    EXPECT_LT(cv.mean(), 1.6);
    EXPECT_LT(synchronyIndex(sim.spikeEvents(), 400, 20000, 50),
              0.1);
}

} // namespace
} // namespace flexon
