/**
 * @file
 * Thread-count determinism: the execution engine must produce
 * bit-identical simulation results (spike counts, spike events,
 * probe traces, stats counters) for any `threads` setting, on every
 * backend. The synapse phase guarantees this by target-sharding the
 * delivery — each ring cell receives its floating-point additions in
 * exactly the serial order regardless of the shard count — and the
 * neuron phase by giving each lane a disjoint slice of independent
 * neurons.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

struct RunResult
{
    std::vector<uint64_t> spikeCounts;
    std::vector<SpikeEvent> events;
    std::vector<std::vector<double>> traces;
    uint64_t spikes;
    uint64_t synapseEvents;
    uint64_t steps;
};

RunResult
runVogelsAbbott(BackendKind backend, size_t threads, uint64_t steps)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
    SimulatorOptions opts;
    opts.backend = backend;
    opts.threads = threads;
    opts.recordSpikes = true;
    opts.probes = {0, 7, 42};
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(steps);

    RunResult result;
    result.spikeCounts = sim.spikeCounts();
    result.events = sim.spikeEvents();
    for (size_t p = 0; p < opts.probes.size(); ++p)
        result.traces.push_back(sim.probeTrace(p));
    result.spikes = sim.stats().spikes;
    result.synapseEvents = sim.stats().synapseEvents;
    result.steps = sim.stats().steps;
    return result;
}

void
expectIdentical(const RunResult &serial, const RunResult &threaded)
{
    EXPECT_EQ(serial.steps, threaded.steps);
    EXPECT_EQ(serial.spikes, threaded.spikes);
    EXPECT_EQ(serial.synapseEvents, threaded.synapseEvents);
    EXPECT_EQ(serial.spikeCounts, threaded.spikeCounts);

    ASSERT_EQ(serial.events.size(), threaded.events.size());
    for (size_t i = 0; i < serial.events.size(); ++i) {
        EXPECT_EQ(serial.events[i].step, threaded.events[i].step);
        EXPECT_EQ(serial.events[i].neuron, threaded.events[i].neuron);
    }

    ASSERT_EQ(serial.traces.size(), threaded.traces.size());
    for (size_t p = 0; p < serial.traces.size(); ++p) {
        ASSERT_EQ(serial.traces[p].size(), threaded.traces[p].size());
        for (size_t t = 0; t < serial.traces[p].size(); ++t) {
            // Bit-identical membrane trajectories, not just "close".
            EXPECT_EQ(serial.traces[p][t], threaded.traces[p][t])
                << "probe " << p << " step " << t;
        }
    }
}

class BackendDeterminism
    : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(BackendDeterminism, FourThreadsBitIdenticalToOne)
{
    const BackendKind kind = GetParam();
    const uint64_t steps = kind == BackendKind::Reference ? 600 : 400;
    const RunResult serial = runVogelsAbbott(kind, 1, steps);
    const RunResult threaded = runVogelsAbbott(kind, 4, steps);
    expectIdentical(serial, threaded);
    EXPECT_GT(serial.spikes, 0u) << "network stayed silent";
}

TEST_P(BackendDeterminism, OddThreadCountAlsoBitIdentical)
{
    const BackendKind kind = GetParam();
    const RunResult serial = runVogelsAbbott(kind, 1, 300);
    const RunResult threaded = runVogelsAbbott(kind, 3, 300);
    expectIdentical(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDeterminism,
    ::testing::Values(BackendKind::Reference, BackendKind::Flexon,
                      BackendKind::Folded),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        switch (info.param) {
          case BackendKind::Reference: return "Reference";
          case BackendKind::Flexon: return "Flexon";
          case BackendKind::Folded: return "Folded";
          default: return "Unknown";
        }
    });

} // namespace
} // namespace flexon
