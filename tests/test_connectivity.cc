/**
 * @file
 * The ConnectivityProvider contract: materialized, compressed, and
 * procedural synapse storage are three encodings of the same wiring,
 * so a simulation must produce bit-identical spike trains under any
 * of them, at any thread count — compression and regeneration only
 * change where the delivery records come from, never their values or
 * their per-cell accumulation order. Also covered: the memory side
 * of the bargain (compressed tables measurably smaller, procedural
 * smaller still), the STDP weight-delta overlay, and checkpoint
 * round-trips including the procedural `weights 2` form and
 * backward-compatible v2 snapshots.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nets/potjans_diesmann.hh"
#include "nets/table1.hh"
#include "snn/auto_engine.hh"
#include "snn/connectivity.hh"
#include "snn/simulator.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

struct RunResult
{
    std::vector<uint64_t> spikeCounts;
    std::vector<SpikeEvent> events;
    uint64_t spikes = 0;
    uint64_t synapseEvents = 0;
    uint64_t connectivityBytes = 0;
};

BenchmarkInstance
vogelsAbbott(bool procedural)
{
    return buildBenchmarkSpec(findBenchmark("Vogels-Abbott"), 0.1, 7,
                              procedural);
}

MicrocircuitInstance
microcircuit(bool procedural)
{
    MicrocircuitOptions mc;
    mc.scale = 60.0;
    mc.seed = 3;
    mc.rateScale = 5.0; // push the tiny instance into activity
    return buildMicrocircuitSpec(mc, procedural);
}

RunResult
runWith(const Network &net, const StimulusGenerator &stim,
        ConnectivityKind kind, size_t threads, uint64_t steps)
{
    SimulatorOptions opts;
    opts.threads = threads;
    opts.recordSpikes = true;
    opts.connectivity = kind;
    Simulator sim(net, stim, opts);
    sim.run(steps);

    RunResult result;
    result.spikeCounts = sim.spikeCounts();
    result.events = sim.spikeEvents();
    result.spikes = sim.stats().spikes;
    result.synapseEvents = sim.stats().synapseEvents;
    result.connectivityBytes = sim.stats().connectivityBytes;
    return result;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.synapseEvents, b.synapseEvents);
    EXPECT_EQ(a.spikeCounts, b.spikeCounts);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].step, b.events[i].step) << "event " << i;
        EXPECT_EQ(a.events[i].neuron, b.events[i].neuron)
            << "event " << i;
    }
}

TEST(ConnectivityGeometry, PartitionsTargetsAndRoundTripsDelays)
{
    BenchmarkInstance inst = vogelsAbbott(false);
    const ConnectivityGeometry geo =
        buildConnectivityGeometry(inst.network, 4);
    ASSERT_GE(geo.shardCount, 1u);
    // Shard boundaries are a monotone partition of the target space.
    EXPECT_EQ(geo.shardTargetBegin.front(), 0u);
    EXPECT_EQ(geo.shardTargetBegin.back(),
              inst.network.numNeurons());
    for (size_t s = 0; s + 1 < geo.shardTargetBegin.size(); ++s)
        EXPECT_LE(geo.shardTargetBegin[s], geo.shardTargetBegin[s + 1]);
    // bucketOf and bucketDelay are inverse over the realized delays.
    for (size_t b = 0; b < geo.bucketDelay.size(); ++b)
        EXPECT_EQ(geo.bucketOf[geo.bucketDelay[b]],
                  static_cast<int>(b));
}

TEST(ConnectivitySpec, SpecBuildsMatchAcrossStorageModes)
{
    // procedural=false materializes the generated rows; the wiring
    // must be the same rows a procedural network regenerates.
    BenchmarkInstance mat = vogelsAbbott(false);
    BenchmarkInstance proc = vogelsAbbott(true);
    ASSERT_EQ(mat.network.numNeurons(), proc.network.numNeurons());
    ASSERT_EQ(mat.network.numSynapses(), proc.network.numSynapses());
    EXPECT_FALSE(mat.network.procedural());
    EXPECT_TRUE(proc.network.procedural());
    std::vector<Synapse> scratch;
    for (uint32_t n = 0; n < mat.network.numNeurons(); ++n) {
        const auto a = mat.network.outgoing(n);
        const auto b = proc.network.rowFor(n, scratch);
        ASSERT_EQ(a.size(), b.size()) << "row " << n;
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].target, b[i].target);
            EXPECT_EQ(a[i].weight, b[i].weight);
            EXPECT_EQ(a[i].delay, b[i].delay);
            EXPECT_EQ(a[i].type, b[i].type);
        }
    }
}

class ProviderEquivalence
    : public ::testing::TestWithParam<ConnectivityKind>
{
};

TEST_P(ProviderEquivalence, VogelsAbbottBitIdenticalAtAnyThreadCount)
{
    const ConnectivityKind kind = GetParam();
    BenchmarkInstance mat = vogelsAbbott(false);
    const RunResult baseline = runWith(
        mat.network, mat.stimulus, ConnectivityKind::Materialized, 1,
        500);
    ASSERT_GT(baseline.spikes, 0u) << "network stayed silent";

    BenchmarkInstance other =
        vogelsAbbott(kind != ConnectivityKind::Materialized);
    for (const size_t threads : {size_t{1}, size_t{3}, size_t{4}}) {
        expectIdentical(baseline, runWith(other.network,
                                          other.stimulus, kind,
                                          threads, 500));
    }
}

TEST_P(ProviderEquivalence, MicrocircuitBitIdenticalAtAnyThreadCount)
{
    const ConnectivityKind kind = GetParam();
    MicrocircuitInstance mat = microcircuit(false);
    const RunResult baseline = runWith(
        mat.network, mat.stimulus, ConnectivityKind::Materialized, 1,
        300);
    ASSERT_GT(baseline.spikes, 0u) << "network stayed silent";

    MicrocircuitInstance other =
        microcircuit(kind != ConnectivityKind::Materialized);
    for (const size_t threads : {size_t{1}, size_t{3}, size_t{4}}) {
        expectIdentical(baseline, runWith(other.network,
                                          other.stimulus, kind,
                                          threads, 300));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProviders, ProviderEquivalence,
    ::testing::Values(ConnectivityKind::Materialized,
                      ConnectivityKind::Compressed,
                      ConnectivityKind::Procedural),
    [](const ::testing::TestParamInfo<ConnectivityKind> &info) {
        return std::string(connectivityKindName(info.param));
    });

TEST(ConnectivityMemory, CompressedAtLeastFourTimesSmaller)
{
    BenchmarkInstance mat =
        buildBenchmarkSpec(findBenchmark("Vogels-Abbott"), 0.2, 7,
                           false);
    BenchmarkInstance comp =
        buildBenchmarkSpec(findBenchmark("Vogels-Abbott"), 0.2, 7,
                           true);
    const RunResult m = runWith(mat.network, mat.stimulus,
                                ConnectivityKind::Materialized, 2,
                                50);
    const RunResult c = runWith(comp.network, comp.stimulus,
                                ConnectivityKind::Compressed, 2, 50);
    ASSERT_GT(c.connectivityBytes, 0u);
    EXPECT_GE(m.connectivityBytes, 4 * c.connectivityBytes)
        << "materialized " << m.connectivityBytes
        << " bytes vs compressed " << c.connectivityBytes;
    const RunResult p = runWith(comp.network, comp.stimulus,
                                ConnectivityKind::Procedural, 2, 50);
    EXPECT_LT(p.connectivityBytes, c.connectivityBytes)
        << "procedural tables must undercut compressed ones";
}

/** Drive the same STDP schedule under two storage modes. */
double
runStdp(Network &net, const StimulusGenerator &stim,
        ConnectivityKind kind, std::vector<SpikeEvent> &events)
{
    SimulatorOptions opts;
    opts.threads = 3;
    opts.recordSpikes = true;
    opts.connectivity = kind;
    Simulator sim(net, stim, opts);
    StdpConfig config;
    config.aPlus = 0.01;
    config.aMinus = 0.012;
    config.wMin = 0.0f;
    config.wMax = 0.5f;
    StdpEngine engine(net, config);
    for (int step = 0; step < 400; ++step) {
        sim.run(1);
        engine.onStep(sim.lastFired());
    }
    events = sim.spikeEvents();
    return engine.meanPlasticWeight();
}

TEST(ConnectivityStdp, OverlayMatchesMaterializedWeights)
{
    BenchmarkInstance mat = vogelsAbbott(false);
    BenchmarkInstance proc = vogelsAbbott(true);
    std::vector<SpikeEvent> matEvents, procEvents;
    const double matMean = runStdp(mat.network, mat.stimulus,
                                   ConnectivityKind::Materialized,
                                   matEvents);
    const double procMean = runStdp(proc.network, proc.stimulus,
                                    ConnectivityKind::Procedural,
                                    procEvents);

    // The learning loop (reads through the overlay, writes through
    // the logging mutator, delivery through regenerated rows) must
    // track the in-place materialized weights bit for bit.
    EXPECT_EQ(matMean, procMean);
    ASSERT_GT(proc.network.overlaySize(), 0u)
        << "STDP never touched the procedural overlay";
    ASSERT_EQ(matEvents.size(), procEvents.size());
    for (size_t i = 0; i < matEvents.size(); ++i) {
        EXPECT_EQ(matEvents[i].step, procEvents[i].step);
        EXPECT_EQ(matEvents[i].neuron, procEvents[i].neuron);
    }
    std::vector<Synapse> scratch;
    for (uint32_t n = 0; n < mat.network.numNeurons(); n += 17) {
        const auto a = mat.network.outgoing(n);
        const auto b = proc.network.rowFor(n, scratch);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].weight, b[i].weight)
                << "row " << n << " entry " << i;
    }
}

TEST(ConnectivityCheckpoint, ProceduralRoundTripIsBitExact)
{
    const uint64_t total = 600, split = 300;
    SimulatorOptions opts;
    opts.threads = 3;
    opts.recordSpikes = true;
    opts.connectivity = ConnectivityKind::Procedural;

    // Uninterrupted baseline, with a weight nudge so the snapshot
    // carries a non-empty `weights 2` overlay block.
    BenchmarkInstance a = vogelsAbbott(true);
    Simulator full(a.network, a.stimulus, opts);
    a.network.setSynapseWeight(5, 0.123f);
    a.network.setSynapseWeight(999, 0.0625f);
    full.run(total);

    const std::string path =
        ::testing::TempDir() + "procedural.fxc";
    BenchmarkInstance b = vogelsAbbott(true);
    {
        Simulator first(b.network, b.stimulus, opts);
        b.network.setSynapseWeight(5, 0.123f);
        b.network.setSynapseWeight(999, 0.0625f);
        first.run(split);
        ASSERT_TRUE(first.saveCheckpointFile(path));
    }

    // Restore into a freshly generated network from the same spec:
    // only the seed and the overlay travel in the file.
    BenchmarkInstance c = vogelsAbbott(true);
    Simulator second(c.network, c.stimulus, opts);
    second.loadCheckpointFile(path, &c.network);
    EXPECT_EQ(second.restoredStep(), split);
    second.run(total - split);

    EXPECT_EQ(full.stats().spikes, second.stats().spikes);
    EXPECT_EQ(full.stats().synapseEvents,
              second.stats().synapseEvents);
    EXPECT_EQ(full.spikeCounts(), second.spikeCounts());
    float w = 0.0f;
    ASSERT_TRUE(c.network.overlayWeight(5, w));
    EXPECT_EQ(w, 0.123f);
}

TEST(ConnectivityCheckpoint, ReadsVersion2Snapshots)
{
    const uint64_t total = 400, split = 200;
    SimulatorOptions opts;
    opts.threads = 2;
    opts.recordSpikes = true;

    BenchmarkInstance a = vogelsAbbott(false);
    Simulator full(a.network, a.stimulus, opts);
    full.run(total);

    const std::string path = ::testing::TempDir() + "compat.fxc";
    BenchmarkInstance b = vogelsAbbott(false);
    {
        Simulator first(b.network, b.stimulus, opts);
        first.run(split);
        ASSERT_TRUE(first.saveCheckpointFile(path));
    }

    // A fixed-weight materialized snapshot is byte-compatible with
    // the v2 format; rewrite the header to what an older build would
    // have written and make sure this build still restores it.
    std::string text;
    {
        std::ifstream is(path);
        std::stringstream ss;
        ss << is.rdbuf();
        text = ss.str();
    }
    const size_t at = text.find("flexon-checkpoint v4");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 20, "flexon-checkpoint v2");
    // v2 files predate the plasticity block; drop it too.
    const size_t pl = text.find("\nplasticity 0\n");
    ASSERT_NE(pl, std::string::npos);
    text.erase(pl, 14);
    {
        std::ofstream os(path);
        os << text;
    }

    Simulator second(b.network, b.stimulus, opts);
    second.loadCheckpointFile(path, &b.network);
    EXPECT_EQ(second.restoredStep(), split);
    second.run(total - split);
    EXPECT_EQ(full.stats().spikes, second.stats().spikes);
    EXPECT_EQ(full.spikeCounts(), second.spikeCounts());
}

TEST(ConnectivityGuards, MisconfigurationsDieWithClearMessages)
{
    // Earlier tests leave worker threads alive; the default fork()
    // death-test style can deadlock in that state. "threadsafe"
    // re-executes the binary for the death assertion instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BenchmarkInstance proc = vogelsAbbott(true);
    SimulatorOptions opts;
    // A procedural network cannot back a materialized router.
    EXPECT_DEATH(Simulator(proc.network, proc.stimulus, opts),
                 "procedural");
    // The event engine has no non-materialized delivery path.
    BenchmarkInstance mat = vogelsAbbott(false);
    SimulatorOptions compOpts;
    compOpts.connectivity = ConnectivityKind::Compressed;
    AutoEngineOptions eventOpts;
    eventOpts.engine = EngineKind::Event;
    EXPECT_DEATH(AutoSession(mat.network, mat.stimulus, compOpts,
                             eventOpts),
                 "materialized");
}

} // namespace
} // namespace flexon
