/**
 * @file
 * Tests that the closed-form predictions of models/analytic agree
 * with the simulated reference dynamics — each formula is validated
 * against an actual run, then the formulas are used as oracles for
 * parameter sweeps (property-style).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/model_table.hh"
#include "models/analytic.hh"
#include "models/reference_neuron.hh"

namespace flexon {
namespace {

TEST(Analytic, LifSteadyStateMatchesSimulation)
{
    for (double input : {0.2, 0.5, 0.9}) {
        ReferenceNeuron n(defaultParams(ModelKind::LIF));
        for (int t = 0; t < 5000; ++t)
            n.step(input);
        EXPECT_NEAR(n.state().v, analytic::lifSteadyState(input),
                    1e-9);
    }
}

TEST(Analytic, LifStepsToThresholdSweep)
{
    // Values chosen so no (input, eps_m) pair lands the membrane
    // exactly on the threshold, where the result would depend on
    // floating-point expression ordering.
    for (double input : {1.1, 1.5, 2.0, 5.0, 19.7}) {
        for (double eps_m : {0.005, 0.01, 0.05}) {
            NeuronParams p = defaultParams(ModelKind::LIF);
            p.epsM = eps_m;
            ReferenceNeuron n(p);
            uint64_t steps = 0;
            while (!n.step(input)) {
                ++steps;
                ASSERT_LT(steps, 100000u);
            }
            ++steps; // the firing step itself
            EXPECT_EQ(steps,
                      analytic::lifStepsToThreshold(input, eps_m))
                << "I=" << input << " epsM=" << eps_m;
        }
    }
}

TEST(Analytic, SubthresholdInputReportsZero)
{
    EXPECT_EQ(analytic::lifStepsToThreshold(0.99, 0.01), 0u);
    EXPECT_EQ(analytic::lifStepsToThreshold(1.0, 0.01), 0u);
}

TEST(Analytic, ExdDecayMatchesSimulation)
{
    NeuronParams p = defaultParams(ModelKind::SLIF);
    ReferenceNeuron n(p);
    n.state().v = 0.73;
    for (int t = 0; t < 321; ++t)
        n.step(0.0);
    EXPECT_NEAR(n.state().v, analytic::exdDecay(0.73, p.epsM, 321),
                1e-12);
}

TEST(Analytic, LidDecayFloorsAtZero)
{
    EXPECT_NEAR(analytic::lidDecay(0.5, 0.002, 100), 0.3, 1e-12);
    EXPECT_DOUBLE_EQ(analytic::lidDecay(0.5, 0.002, 10000), 0.0);
}

TEST(Analytic, AlphaPeakMatchesSimulation)
{
    for (double eps_g : {0.01, 0.02, 0.1}) {
        NeuronParams p = defaultParams(ModelKind::IFPscAlpha);
        p.syn[0].epsG = eps_g;
        ReferenceNeuron n(p);
        n.step(0.5);
        double peak = 0.0;
        uint64_t peak_t = 0;
        for (uint64_t t = 1; t < 2000; ++t) {
            n.step(0.0);
            if (n.state().g[0] > peak) {
                peak = n.state().g[0];
                peak_t = t;
            }
        }
        const uint64_t predicted = analytic::alphaPeakStep(eps_g);
        EXPECT_NEAR(static_cast<double>(peak_t),
                    static_cast<double>(predicted),
                    std::max(2.0, 0.1 * predicted))
            << "epsG=" << eps_g;
    }
}

TEST(Analytic, QdiSeparatrixIsSharp)
{
    const NeuronParams p = defaultParams(ModelKind::QIF);
    const double sep = analytic::qdiSeparatrix(p);

    ReferenceNeuron below(p);
    below.state().v = sep - 0.02;
    int spikes = 0;
    for (int t = 0; t < 20000; ++t)
        spikes += below.step(0.0);
    EXPECT_EQ(spikes, 0);

    ReferenceNeuron above(p);
    above.state().v = sep + 0.02;
    spikes = 0;
    for (int t = 0; t < 20000; ++t)
        spikes += above.step(0.0);
    EXPECT_EQ(spikes, 1);
}

TEST(Analytic, ExiRheobaseIsSharp)
{
    const NeuronParams p = defaultParams(ModelKind::EIF);
    const double rheo = analytic::exiRheobase(p);
    EXPECT_GT(rheo, 1.0);
    EXPECT_LT(rheo, p.vFiring);

    ReferenceNeuron below(p);
    below.state().v = rheo - 0.02;
    int spikes = 0;
    for (int t = 0; t < 20000; ++t)
        spikes += below.step(0.0);
    EXPECT_EQ(spikes, 0);

    ReferenceNeuron above(p);
    above.state().v = rheo + 0.02;
    spikes = 0;
    for (int t = 0; t < 20000; ++t)
        spikes += above.step(0.0);
    EXPECT_EQ(spikes, 1);
}

TEST(Analytic, CobeSteadyStateMatchesSimulation)
{
    NeuronParams p = defaultParams(ModelKind::DSRM0);
    ReferenceNeuron n(p);
    // Hold a constant subthreshold conductance drive; AR blocks only
    // after spikes, so keep it silent.
    for (int t = 0; t < 5000; ++t)
        n.step(0.001);
    EXPECT_NEAR(n.state().g[0],
                analytic::cobeSteadyState(0.001, p.syn[0].epsG),
                1e-6);
}

} // namespace
} // namespace flexon
