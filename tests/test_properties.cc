/**
 * @file
 * Cross-cutting property tests spanning modules: boundedness of the
 * dynamics, monotonicity of drive, scale invariance of the benchmark
 * generators, determinism across backends, and the hardware-model
 * saturation behaviour under adversarial inputs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/random.hh"
#include "features/model_table.hh"
#include "flexon/neuron.hh"
#include "folded/neuron.hh"
#include "models/reference_neuron.hh"
#include "nets/table1.hh"
#include "snn/serialize.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(Property, ReferenceStaysFiniteUnderBoundedInput)
{
    // No NaN/inf escapes any model for inputs within +/- 10 over
    // long runs (double-precision reference; the fixed-point models
    // saturate by construction).
    Rng rng(71);
    for (ModelKind kind : allModels()) {
        ReferenceNeuron n(defaultParams(kind));
        for (int t = 0; t < 20000; ++t) {
            n.step(rng.uniform(-10.0, 10.0));
            ASSERT_TRUE(std::isfinite(n.state().v))
                << modelName(kind) << " step " << t;
            ASSERT_TRUE(std::isfinite(n.state().w));
            ASSERT_TRUE(std::isfinite(n.state().g[0]));
        }
    }
}

TEST(Property, HardwareSaturatesInsteadOfWrapping)
{
    // Adversarial inputs at the fixed-point limits: the hardware
    // models must saturate (bounded raw values), never wrap, and
    // keep spiking deterministically.
    for (ModelKind kind : {ModelKind::AdEx, ModelKind::Izhikevich}) {
        const FlexonConfig c =
            FlexonConfig::fromParams(defaultParams(kind));
        FlexonNeuron base(c);
        FoldedFlexonNeuron folded(c);
        const Fix huge = Fix::fromRaw(Fix::rawMax);
        for (int t = 0; t < 200; ++t) {
            const bool fb = base.step(huge);
            const bool ff = folded.step(huge);
            ASSERT_EQ(fb, ff) << modelName(kind) << " step " << t;
            ASSERT_LE(base.state().v.raw(), Fix::rawMax);
            ASSERT_GE(base.state().v.raw(), Fix::rawMin);
        }
    }
}

TEST(Property, StrongerDriveNeverFiresFewerLifSpikes)
{
    // Monotone drive property of the hard-threshold current models.
    for (ModelKind kind : {ModelKind::LIF, ModelKind::SLIF}) {
        int prev = -1;
        for (double drive : {0.5, 1.2, 2.0, 4.0, 8.0}) {
            ReferenceNeuron n(defaultParams(kind));
            int spikes = 0;
            for (int t = 0; t < 10000; ++t)
                spikes += n.step(drive);
            EXPECT_GE(spikes, prev)
                << modelName(kind) << " drive " << drive;
            prev = spikes;
        }
    }
}

TEST(Property, BenchmarkActivityIsScaleInvariant)
{
    // The gain-based weight derivation keeps the firing rate stable
    // across instance sizes (within a factor ~2: finite-size noise).
    for (const char *name : {"Vogels-Abbott", "Brunel"}) {
        double rates[2] = {0.0, 0.0};
        const double scales[2] = {40.0, 13.0};
        for (int i = 0; i < 2; ++i) {
            BenchmarkInstance inst =
                buildBenchmark(findBenchmark(name), scales[i], 5);
            Simulator sim(inst.network, inst.stimulus);
            sim.run(2000);
            rates[i] = sim.meanRate();
        }
        ASSERT_GT(rates[0], 0.0) << name;
        ASSERT_GT(rates[1], 0.0) << name;
        const double ratio = rates[0] / rates[1];
        EXPECT_GT(ratio, 0.5) << name;
        EXPECT_LT(ratio, 2.0) << name;
    }
}

TEST(Property, BackendsDeterministicAcrossConstruction)
{
    // Building the same simulation twice (fresh arrays, fresh
    // microcode) must reproduce every spike, for every backend.
    for (BackendKind kind :
         {BackendKind::Reference, BackendKind::Flexon,
          BackendKind::Folded}) {
        uint64_t spikes[2];
        for (int run = 0; run < 2; ++run) {
            BenchmarkInstance inst = buildBenchmark(
                findBenchmark("Izhikevich"), 100.0, 17);
            SimulatorOptions opts;
            opts.backend = kind;
            Simulator sim(inst.network, inst.stimulus, opts);
            sim.run(1500);
            spikes[run] = sim.stats().spikes;
        }
        EXPECT_EQ(spikes[0], spikes[1]) << backendName(kind);
    }
}

TEST(Property, TruncationNeverIncreasesStoredMagnitude)
{
    Rng rng(91);
    for (int i = 0; i < 10000; ++i) {
        const Fix v = Fix::fromDouble(rng.uniform(-3.0, 3.0));
        const Fix t = truncateMembrane(v);
        ASSERT_GE(t.raw(), 0);
        ASSERT_LT(t.raw(), Fix::rawOne);
        if (v.raw() >= 0 && v.raw() < Fix::rawOne)
            ASSERT_EQ(t.raw(), v.raw()); // identity inside [0, 1)
    }
}

TEST(Property, ProgramLengthBoundsFoldedLatency)
{
    // For every model: folded latency == signals + 1, and the
    // signal count never exceeds what a naive one-op-per-equation
    // lowering would need (a sanity ceiling of 4 ops per feature per
    // synapse type).
    for (ModelKind kind : allModels()) {
        const NeuronParams p = defaultParams(kind);
        const FlexonConfig c = FlexonConfig::fromParams(p);
        const MicrocodeProgram prog = buildProgram(c);
        EXPECT_EQ(prog.latencyCycles(), prog.length() + 1)
            << modelName(kind);
        const size_t ceiling =
            4 * p.features.count() * c.numSynapseTypes;
        EXPECT_LE(prog.length(), ceiling) << modelName(kind);
    }
}

TEST(Property, SerializedBenchmarkSimulatesLikeTheOriginal)
{
    // Random benchmark -> save -> load -> identical folded run.
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Nowotny"), 30.0, 23);
    std::stringstream buffer;
    saveNetwork(buffer, inst.network);
    const Network loaded = loadNetwork(buffer);

    auto spikes = [&](const Network &net) {
        StimulusGenerator stim(9);
        stim.addSource(StimulusSource::poisson(
            0, static_cast<uint32_t>(net.numNeurons()), 0.02, 2.0f,
            0));
        SimulatorOptions opts;
        opts.backend = BackendKind::Folded;
        Simulator sim(net, stim, opts);
        sim.run(1200);
        return sim.stats().spikes;
    };
    EXPECT_EQ(spikes(inst.network), spikes(loaded));
}

} // namespace
} // namespace flexon
