/**
 * @file
 * Tests for the SimulationSession checkpoint/restore layer: a run of
 * N steps must be bit-identical — spike counts, spike events, probe
 * traces, final membrane state, counters — to running k steps,
 * saving a checkpoint, restoring it into a freshly constructed
 * session, and running the remaining N - k steps. Exercised for
 * every dense backend at several thread counts, for the
 * event-driven engine, with STDP mutating weights mid-run, and for
 * restore-onto-a-used-session semantics.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "features/model_table.hh"
#include "nets/table1.hh"
#include "snn/auto_engine.hh"
#include "snn/event_driven.hh"
#include "snn/simulator.hh"
#include "snn/stdp.hh"

namespace flexon {
namespace {

struct RunResult
{
    std::vector<uint64_t> spikeCounts;
    std::vector<SpikeEvent> events;
    std::vector<std::vector<double>> traces;
    std::vector<double> membranes;
    uint64_t steps = 0;
    uint64_t spikes = 0;
    uint64_t synapseEvents = 0;
};

RunResult
capture(const SimulationSession &sim, size_t numProbes)
{
    RunResult r;
    r.spikeCounts = sim.spikeCounts();
    r.events = sim.spikeEvents();
    for (size_t p = 0; p < numProbes; ++p)
        r.traces.push_back(sim.probeTrace(p));
    for (uint32_t n = 0; n < sim.network().numNeurons(); ++n)
        r.membranes.push_back(sim.membrane(n));
    const PhaseStats &st = sim.stats();
    r.steps = st.steps;
    r.spikes = st.spikes;
    r.synapseEvents = st.synapseEvents;
    return r;
}

void
expectIdentical(const RunResult &full, const RunResult &restored)
{
    EXPECT_EQ(full.steps, restored.steps);
    EXPECT_EQ(full.spikes, restored.spikes);
    EXPECT_EQ(full.synapseEvents, restored.synapseEvents);
    EXPECT_EQ(full.spikeCounts, restored.spikeCounts);

    ASSERT_EQ(full.events.size(), restored.events.size());
    for (size_t i = 0; i < full.events.size(); ++i) {
        EXPECT_EQ(full.events[i].step, restored.events[i].step);
        EXPECT_EQ(full.events[i].neuron, restored.events[i].neuron);
    }

    ASSERT_EQ(full.traces.size(), restored.traces.size());
    for (size_t p = 0; p < full.traces.size(); ++p) {
        ASSERT_EQ(full.traces[p].size(), restored.traces[p].size());
        for (size_t t = 0; t < full.traces[p].size(); ++t) {
            // Bit-identical, not just "close".
            EXPECT_EQ(full.traces[p][t], restored.traces[p][t])
                << "probe " << p << " step " << t;
        }
    }

    ASSERT_EQ(full.membranes.size(), restored.membranes.size());
    for (size_t n = 0; n < full.membranes.size(); ++n) {
        EXPECT_EQ(full.membranes[n], restored.membranes[n])
            << "neuron " << n;
    }
}

SimulatorOptions
denseOptions(BackendKind backend, size_t threads)
{
    SimulatorOptions opts;
    opts.backend = backend;
    opts.threads = threads;
    opts.recordSpikes = true;
    opts.probes = {0, 7, 42};
    return opts;
}

using DenseRestartParam = std::tuple<BackendKind, size_t>;

class DenseRestart
    : public ::testing::TestWithParam<DenseRestartParam>
{
};

TEST_P(DenseRestart, SplitRunMatchesFullRunBitForBit)
{
    const auto [backend, threads] = GetParam();
    const uint64_t total = 160, split = 70;
    const SimulatorOptions opts = denseOptions(backend, threads);

    BenchmarkInstance a =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
    Simulator full(a.network, a.stimulus, opts);
    full.run(total);

    BenchmarkInstance b =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
    std::stringstream snapshot;
    {
        Simulator first(b.network, b.stimulus, opts);
        first.run(split);
        first.saveCheckpoint(snapshot);
        EXPECT_EQ(first.checkpointSaves(), 1u);
    } // the first session object is gone: restore must be
      // self-contained

    Simulator second(b.network, b.stimulus, opts);
    second.loadCheckpoint(snapshot);
    EXPECT_TRUE(second.restored());
    EXPECT_EQ(second.restoredStep(), split);
    EXPECT_EQ(second.currentStep(), split);
    second.run(total - split);

    expectIdentical(capture(full, opts.probes.size()),
                    capture(second, opts.probes.size()));
    EXPECT_GT(full.stats().spikes, 0u) << "network stayed silent";
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndThreads, DenseRestart,
    ::testing::Combine(
        ::testing::Values(BackendKind::Reference, BackendKind::Flexon,
                          BackendKind::Folded),
        ::testing::Values(size_t{1}, size_t{3}, size_t{4})),
    [](const ::testing::TestParamInfo<DenseRestartParam> &info) {
        const BackendKind backend = std::get<0>(info.param);
        const size_t threads = std::get<1>(info.param);
        std::string name;
        switch (backend) {
          case BackendKind::Reference: name = "Reference"; break;
          case BackendKind::Flexon: name = "Flexon"; break;
          case BackendKind::Folded: name = "Folded"; break;
          default: name = "Unknown"; break;
        }
        return name + "T" + std::to_string(threads);
    });

/** A recurrent LLIF network with background stimulus. */
struct LlifSetup
{
    Network net;
    StimulusGenerator stim{1};
};

LlifSetup
llifNetwork(size_t neurons, double rate, uint64_t seed)
{
    LlifSetup s;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    const size_t pop = s.net.addPopulation("llif", p, neurons);
    Rng rng(seed);
    s.net.connectRandom(pop, pop, 0.05, 0.4, 1, 6, 0, rng);
    s.net.finalize();
    s.stim = StimulusGenerator(seed ^ 0xabcdULL);
    s.stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), rate, 0.8f, 0));
    return s;
}

SessionOptions
evOptions()
{
    SessionOptions opts;
    opts.recordSpikes = true;
    opts.probes = {0, 3, 11};
    return opts;
}

TEST(EventDrivenRestart, SplitRunMatchesFullRunBitForBit)
{
    const uint64_t total = 1200, split = 500;
    const SessionOptions opts = evOptions();

    LlifSetup a = llifNetwork(80, 0.02, 7);
    EventDrivenSimulator full(a.net, a.stim, opts);
    full.run(total);

    LlifSetup b = llifNetwork(80, 0.02, 7);
    std::stringstream snapshot;
    {
        EventDrivenSimulator first(b.net, b.stim, opts);
        first.run(split);
        first.saveCheckpoint(snapshot);
    }

    EventDrivenSimulator second(b.net, b.stim, opts);
    second.loadCheckpoint(snapshot);
    EXPECT_EQ(second.restoredStep(), split);
    second.run(total - split);

    expectIdentical(capture(full, opts.probes.size()),
                    capture(second, opts.probes.size()));
    EXPECT_GT(full.stats().spikes, 0u);
    // The event-driven statistics view must continue across the
    // restore too (updates are part of the checkpoint).
    EXPECT_EQ(second.stats().updates, full.stats().updates);
    EXPECT_EQ(second.stats().denseUpdates, full.stats().denseUpdates);
}

TEST(SessionCheckpoint, RestoreOntoUsedSessionEqualsFreshRestore)
{
    const uint64_t total = 150, split = 60;
    const SimulatorOptions opts =
        denseOptions(BackendKind::Flexon, 1);

    BenchmarkInstance a =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
    Simulator full(a.network, a.stimulus, opts);
    full.run(total);

    BenchmarkInstance b =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
    std::stringstream snapshot;
    Simulator first(b.network, b.stimulus, opts);
    first.run(split);
    first.saveCheckpoint(snapshot);

    // A session that has already simulated unrelated steps must be
    // indistinguishable from a fresh object after loadCheckpoint.
    Simulator second(b.network, b.stimulus, opts);
    second.run(37);
    second.loadCheckpoint(snapshot);
    second.run(total - split);

    expectIdentical(capture(full, opts.probes.size()),
                    capture(second, opts.probes.size()));
}

TEST(SessionCheckpoint, StdpWeightsRehydrateAndLearningContinues)
{
    const uint64_t total = 400, split = 170;

    // Uninterrupted baseline: dense simulator + STDP, stepped
    // manually so the plasticity hook sees every step's fired flags.
    LlifSetup a = llifNetwork(60, 0.05, 21);
    SimulatorOptions opts;
    opts.probes = {0, 5};
    opts.recordSpikes = true;
    Simulator full(a.net, a.stim, opts);
    StdpEngine fullStdp(a.net, {});
    for (uint64_t t = 0; t < total; ++t) {
        full.stepOnce();
        fullStdp.onStep(full.lastFired());
    }

    // Split run over an identically built network.
    LlifSetup b = llifNetwork(60, 0.05, 21);
    std::stringstream snapshot;
    {
        Simulator first(b.net, b.stim, opts);
        StdpEngine firstStdp(b.net, {});
        for (uint64_t t = 0; t < split; ++t) {
            first.stepOnce();
            firstStdp.onStep(first.lastFired());
        }
        first.saveCheckpoint(snapshot);
        firstStdp.saveState(snapshot);
    }

    // Fresh objects. The network still holds the split-time weights
    // (they live in the Network), but loadCheckpoint rewrites them
    // from the snapshot anyway — the restore does not depend on the
    // shared Network's incidental state.
    Simulator second(b.net, b.stim, opts);
    StdpEngine secondStdp(b.net, {});
    second.loadCheckpoint(snapshot, &b.net);
    secondStdp.loadState(snapshot);
    for (uint64_t t = split; t < total; ++t) {
        second.stepOnce();
        secondStdp.onStep(second.lastFired());
    }

    expectIdentical(capture(full, opts.probes.size()),
                    capture(second, opts.probes.size()));

    // The learned weights themselves must match bit for bit.
    ASSERT_GT(fullStdp.plasticSynapses(), 0u);
    EXPECT_EQ(fullStdp.meanPlasticWeight(),
              secondStdp.meanPlasticWeight());
    for (uint64_t i = 0; i < a.net.numSynapses(); ++i) {
        EXPECT_EQ(std::as_const(a.net).synapseAt(i).weight,
                  std::as_const(b.net).synapseAt(i).weight)
            << "synapse " << i;
    }
}

TEST(SessionCheckpoint, StdpCheckpointNeedsTheMutableNetwork)
{
    LlifSetup s = llifNetwork(40, 0.05, 3);
    SimulatorOptions opts;
    Simulator sim(s.net, s.stim, opts);
    StdpEngine stdp(s.net, {});
    for (uint64_t t = 0; t < 50; ++t) {
        sim.stepOnce();
        stdp.onStep(sim.lastFired());
    }
    std::stringstream snapshot;
    sim.saveCheckpoint(snapshot);

    Simulator second(s.net, s.stim, opts);
    EXPECT_DEATH(second.loadCheckpoint(snapshot),
                 "mutated synapse weights");
}

TEST(SessionCheckpoint, RejectsEngineKindMismatch)
{
    LlifSetup a = llifNetwork(30, 0.02, 9);
    Simulator dense(a.net, a.stim, SimulatorOptions{});
    dense.run(20);
    std::stringstream snapshot;
    dense.saveCheckpoint(snapshot);

    LlifSetup b = llifNetwork(30, 0.02, 9);
    EventDrivenSimulator sparse(b.net, b.stim);
    EXPECT_DEATH(sparse.loadCheckpoint(snapshot),
                 "written by a 'dense' engine");
}

TEST(SessionCheckpoint, RejectsNeuronCountMismatch)
{
    LlifSetup a = llifNetwork(30, 0.02, 9);
    Simulator dense(a.net, a.stim, SimulatorOptions{});
    dense.run(10);
    std::stringstream snapshot;
    dense.saveCheckpoint(snapshot);

    LlifSetup b = llifNetwork(31, 0.02, 9);
    Simulator other(b.net, b.stim, SimulatorOptions{});
    EXPECT_DEATH(other.loadCheckpoint(snapshot), "neurons");
}

// ---- Rate-adaptive engine switch --------------------------------

/**
 * Auto-engine options that force an early event -> dense switch: a
 * synthetic calibration pricing the event-driven unit at 200x the
 * dense update pushes the planned crossover rate below any sustained
 * activity, so the session (which starts event-driven on the silent
 * fresh network) must hand off to dense at an early decision
 * boundary.
 */
const plan::ExecutionPlanner &
expensiveEventPlanner()
{
    static const plan::ExecutionPlanner planner = [] {
        plan::CalibrationData cal = plan::builtinCalibration();
        cal.version = "test-forced-switch";
        cal.model.eventNsPerUnit =
            cal.model.denseNsPerNeuron * 200.0;
        return plan::ExecutionPlanner(cal);
    }();
    return planner;
}

AutoEngineOptions
forcedSwitchOptions()
{
    AutoEngineOptions a;
    a.engine = EngineKind::Auto;
    a.decisionWindow = 64;
    a.planner = &expensiveEventPlanner();
    return a;
}

TEST(AutoEngine, SwitchingRunMatchesPinnedEnginesBitForBit)
{
    const uint64_t total = 640;
    SimulatorOptions opts;
    opts.recordSpikes = true;
    opts.probes = {0, 3, 11};

    LlifSetup a = llifNetwork(90, 0.05, 13);
    Simulator dense(a.net, a.stim, opts);
    dense.run(total);
    ASSERT_GT(dense.stats().spikes, 0u) << "network stayed silent";

    LlifSetup b = llifNetwork(90, 0.05, 13);
    AutoSession autoSim(b.net, b.stim, opts, forcedSwitchOptions());
    ASSERT_TRUE(autoSim.adaptive());
    autoSim.run(total);
    EXPECT_GE(autoSim.switches(), 1u)
        << "forced crossover never triggered a switch";
    EXPECT_FALSE(autoSim.eventActive());

    expectIdentical(capture(dense, opts.probes.size()),
                    capture(autoSim.session(), opts.probes.size()));
}

TEST(AutoEngine, CheckpointAcrossSwitchRestoresBitForBit)
{
    const uint64_t total = 640, split = 320;
    SimulatorOptions opts;
    opts.recordSpikes = true;
    opts.probes = {0, 3, 11};

    // Uninterrupted adaptive baseline.
    LlifSetup a = llifNetwork(90, 0.05, 13);
    AutoSession full(a.net, a.stim, opts, forcedSwitchOptions());
    full.run(total);
    ASSERT_GE(full.switches(), 1u);

    // Same run split at a point past the switch; the snapshot is
    // written by whichever engine is live at the split.
    const std::string path =
        ::testing::TempDir() + "auto-switch.fxc";
    LlifSetup b = llifNetwork(90, 0.05, 13);
    {
        AutoSession first(b.net, b.stim, opts,
                          forcedSwitchOptions());
        first.run(split);
        ASSERT_GE(first.switches(), 1u)
            << "split point landed before the switch";
        EXPECT_FALSE(first.eventActive());
        ASSERT_TRUE(first.saveCheckpointFile(path));
    } // restore below must be self-contained

    // A fresh adaptive session starts on the event engine; the
    // restore must rebuild the engine the checkpoint was written by
    // and then continue bit-exactly, including later decisions (the
    // EWMA estimator travels in the snapshot).
    AutoSession second(b.net, b.stim, opts, forcedSwitchOptions());
    EXPECT_TRUE(second.eventActive());
    second.loadCheckpointFile(path);
    EXPECT_FALSE(second.eventActive());
    EXPECT_EQ(second.session().restoredStep(), split);
    second.run(total - split);

    expectIdentical(capture(full.session(), opts.probes.size()),
                    capture(second.session(), opts.probes.size()));
}

TEST(AutoEngine, PinnedKindsNeverSwitch)
{
    LlifSetup a = llifNetwork(50, 0.05, 5);
    AutoEngineOptions pin;
    pin.engine = EngineKind::Event;
    AutoSession ev(a.net, a.stim, SimulatorOptions{}, pin);
    EXPECT_FALSE(ev.adaptive());
    EXPECT_TRUE(ev.eventActive());
    ev.run(300);
    EXPECT_EQ(ev.switches(), 0u);

    LlifSetup b = llifNetwork(50, 0.05, 5);
    pin.engine = EngineKind::Dense;
    AutoSession dense(b.net, b.stim, SimulatorOptions{}, pin);
    EXPECT_FALSE(dense.adaptive());
    EXPECT_FALSE(dense.eventActive());
    dense.run(300);
    EXPECT_EQ(dense.switches(), 0u);

    // Identical spikes regardless of the pin.
    EXPECT_EQ(ev.session().spikeCounts(),
              dense.session().spikeCounts());
}

TEST(AutoEngine, AutoFallsBackToDenseWhenIneligible)
{
    // A non-LLIF network cannot run event-driven; Auto must pin
    // dense instead of dying.
    Network net;
    net.addPopulation("lif", defaultParams(ModelKind::LIF), 40);
    net.finalize();
    StimulusGenerator stim(3);
    stim.addSource(StimulusSource::poisson(0, 40, 0.05, 0.8f, 0));

    AutoSession sim(net, stim, SimulatorOptions{},
                    AutoEngineOptions{});
    EXPECT_FALSE(sim.adaptive());
    EXPECT_FALSE(sim.eventActive());
    sim.run(100);
    EXPECT_EQ(sim.switches(), 0u);
    EXPECT_EQ(sim.session().currentStep(), 100u);
}

TEST(SessionCheckpoint, ReportCarriesCheckpointSection)
{
    LlifSetup s = llifNetwork(20, 0.02, 4);
    Simulator sim(s.net, s.stim, SimulatorOptions{});
    sim.setCheckpointCadence(25);
    sim.run(50);
    std::stringstream snapshot;
    sim.saveCheckpoint(snapshot);
    sim.saveCheckpoint(snapshot);

    const std::string path = ::testing::TempDir() + "report.json";
    ASSERT_TRUE(sim.writeRunReport(path));
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string json = buffer.str();
    EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
    EXPECT_NE(json.find("\"every\": 25"), std::string::npos);
    EXPECT_NE(json.find("\"saves\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"restored\": false"), std::string::npos);
}

} // namespace
} // namespace flexon
