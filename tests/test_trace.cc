/**
 * @file
 * Tests for the folded-Flexon execution tracer: agreement with the
 * production interpreter (enforced internally by the shadow twin),
 * cycle accounting, operand capture, and the rendered log format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hh"
#include "features/model_table.hh"
#include "folded/trace.hh"

namespace flexon {
namespace {

FlexonConfig
configFor(ModelKind kind)
{
    return FlexonConfig::fromParams(defaultParams(kind));
}

TEST(Trace, CycleCountMatchesProgramLength)
{
    TracedFoldedNeuron n(configFor(ModelKind::DLIF));
    const size_t len = buildProgram(configFor(ModelKind::DLIF)).length();
    for (int t = 0; t < 10; ++t)
        n.step(Fix::zero());
    EXPECT_EQ(n.totalCycles(), 10u * len);
    EXPECT_EQ(n.fires().size(), 10u);
}

TEST(Trace, ShadowTwinStaysInLockStep)
{
    // The tracer asserts internally against an untraced
    // FoldedFlexonNeuron; driving it hard for many steps exercises
    // that cross-check (a divergence would abort).
    const FlexonConfig config = configFor(ModelKind::AdEx);
    TracedFoldedNeuron n(config);
    Rng rng(3);
    int spikes = 0;
    for (int t = 0; t < 5000; ++t) {
        const Fix in = rng.bernoulli(0.2)
                           ? config.scaleWeight(rng.uniform(0.2, 0.7))
                           : Fix::zero();
        spikes += n.step(in);
    }
    EXPECT_GT(spikes, 0);
}

TEST(Trace, CapturesLifSemantics)
{
    // One LIF step with v = 0.5 and input 0.2 (pre-scaled): the
    // single control signal computes eps'_m * v + I.
    const FlexonConfig config = configFor(ModelKind::LIF);
    TracedFoldedNeuron n(config);
    n.step(Fix::zero()); // settle trace plumbing
    n.clearTrace();

    // Manually set v via a warm-up input, then inspect one cycle.
    const Fix in = config.scaleWeight(30.0);
    n.step(in);
    ASSERT_EQ(n.cycles().size(), 1u);
    const TraceCycle &c = n.cycles()[0];
    EXPECT_EQ(c.op.s, StateVar::V);
    EXPECT_EQ(c.addOperand.raw(), in.raw());
    EXPECT_NEAR(c.mulOperand.toDouble(), 0.99, 1e-6);
    EXPECT_EQ(c.result.raw(), c.vAccAfter.raw());
    EXPECT_EQ(n.state().v.raw(), c.result.raw());
}

TEST(Trace, FireStageRecordsSpikes)
{
    const FlexonConfig config = configFor(ModelKind::LIF);
    TracedFoldedNeuron n(config);
    const bool fired = n.step(config.scaleWeight(200.0)); // dv = 2.0
    EXPECT_TRUE(fired);
    ASSERT_EQ(n.fires().size(), 1u);
    EXPECT_TRUE(n.fires()[0].fired);
    EXPECT_GT(n.fires()[0].preResetV.toDouble(), 1.0);
    EXPECT_EQ(n.state().v.raw(), 0);
}

TEST(Trace, RenderedLogIsReadable)
{
    const FlexonConfig config = configFor(ModelKind::QIF);
    TracedFoldedNeuron n(config);
    n.step(config.scaleWeight(0.5));
    n.step(Fix::zero());
    std::ostringstream oss;
    n.write(oss);
    const std::string log = oss.str();
    EXPECT_NE(log.find("step 0:"), std::string::npos);
    EXPECT_NE(log.find("step 1:"), std::string::npos);
    EXPECT_NE(log.find("fire-stage"), std::string::npos);
    EXPECT_NE(log.find("v'="), std::string::npos);
    EXPECT_NE(log.find("; tmp ="), std::string::npos);
}

TEST(Trace, ExponentiationCycleFlagged)
{
    const FlexonConfig config = configFor(ModelKind::EIF);
    TracedFoldedNeuron n(config);
    n.step(Fix::zero());
    std::ostringstream oss;
    n.write(oss);
    EXPECT_NE(oss.str().find("|exp|"), std::string::npos);
}

TEST(Trace, ClearTraceKeepsState)
{
    const FlexonConfig config = configFor(ModelKind::DLIF);
    TracedFoldedNeuron n(config);
    n.step(config.scaleWeight(0.4));
    const Fix v = n.state().v;
    n.clearTrace();
    EXPECT_EQ(n.totalCycles(), 0u);
    EXPECT_EQ(n.state().v.raw(), v.raw());
}

} // namespace
} // namespace flexon
