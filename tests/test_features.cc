/**
 * @file
 * Tests for the biologically common features (Table II), the
 * FeatureSet combination rules, the Table III model-to-feature map,
 * and parameter validation.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "features/feature.hh"
#include "features/model_table.hh"
#include "features/params.hh"

namespace flexon {
namespace {

TEST(Feature, TwelveFeaturesWithUniqueNames)
{
    EXPECT_EQ(numFeatures, 12u);
    std::set<std::string> names;
    for (size_t i = 0; i < numFeatures; ++i)
        names.insert(featureName(static_cast<Feature>(i)));
    EXPECT_EQ(names.size(), 12u);
}

TEST(Feature, CategoriesMatchTableII)
{
    using F = Feature;
    using C = FeatureCategory;
    EXPECT_EQ(featureCategory(F::EXD), C::MembraneDecay);
    EXPECT_EQ(featureCategory(F::LID), C::MembraneDecay);
    EXPECT_EQ(featureCategory(F::CUB), C::InputSpikeAccumulation);
    EXPECT_EQ(featureCategory(F::COBE), C::InputSpikeAccumulation);
    EXPECT_EQ(featureCategory(F::COBA), C::InputSpikeAccumulation);
    EXPECT_EQ(featureCategory(F::REV), C::InputSpikeAccumulation);
    EXPECT_EQ(featureCategory(F::QDI), C::SpikeInitiation);
    EXPECT_EQ(featureCategory(F::EXI), C::SpikeInitiation);
    EXPECT_EQ(featureCategory(F::ADT), C::SpikeTriggeredCurrent);
    EXPECT_EQ(featureCategory(F::SBT), C::SpikeTriggeredCurrent);
    EXPECT_EQ(featureCategory(F::AR), C::Refractory);
    EXPECT_EQ(featureCategory(F::RR), C::Refractory);
}

TEST(Feature, RoundTripNames)
{
    for (size_t i = 0; i < numFeatures; ++i) {
        const auto f = static_cast<Feature>(i);
        EXPECT_EQ(featureFromName(featureName(f)), f);
    }
}

TEST(Feature, UnknownNameIsNotAnError)
{
    EXPECT_EQ(featureFromName("WAT"), std::nullopt);
    EXPECT_EQ(featureFromName(""), std::nullopt);
    EXPECT_EQ(featureFromName("exd"), std::nullopt) // case-sensitive
        << "feature names are upper-case";
}

TEST(FeatureSet, AddRemoveHas)
{
    FeatureSet s;
    EXPECT_TRUE(s.empty());
    s.add(Feature::EXD).add(Feature::CUB);
    EXPECT_TRUE(s.has(Feature::EXD));
    EXPECT_TRUE(s.has(Feature::CUB));
    EXPECT_FALSE(s.has(Feature::AR));
    EXPECT_EQ(s.count(), 2u);
    s.remove(Feature::CUB);
    EXPECT_FALSE(s.has(Feature::CUB));
    EXPECT_EQ(s.count(), 1u);
}

TEST(FeatureSet, RawRoundTrip)
{
    const FeatureSet s{Feature::EXD, Feature::COBE, Feature::AR};
    EXPECT_EQ(FeatureSet::fromRaw(s.raw()), s);
}

TEST(FeatureSet, ToStringListsInTableOrder)
{
    const FeatureSet s{Feature::AR, Feature::EXD, Feature::COBE};
    EXPECT_EQ(s.toString(), "EXD+COBE+AR");
    EXPECT_EQ(FeatureSet{}.toString(), "(none)");
}

TEST(FeatureSet, MutualExclusionRules)
{
    EXPECT_FALSE(FeatureSet({Feature::EXD, Feature::LID}).valid());
    EXPECT_FALSE(FeatureSet({Feature::CUB, Feature::COBE}).valid());
    EXPECT_FALSE(FeatureSet({Feature::COBE, Feature::COBA}).valid());
    EXPECT_FALSE(FeatureSet({Feature::QDI, Feature::EXI}).valid());
    EXPECT_FALSE(FeatureSet({Feature::CUB, Feature::REV}).valid());
    EXPECT_FALSE(FeatureSet({Feature::REV}).valid());
    EXPECT_FALSE(
        FeatureSet({Feature::RR, Feature::ADT}).valid());
    EXPECT_TRUE(
        FeatureSet({Feature::EXD, Feature::COBE, Feature::REV})
            .valid());
}

TEST(ModelTable, AllModelsHaveValidFeatureSets)
{
    for (ModelKind kind : allModels()) {
        const FeatureSet fs = modelFeatures(kind);
        EXPECT_TRUE(fs.valid())
            << modelName(kind) << ": " << fs.validate();
    }
}

/** The exact Table III rows. */
TEST(ModelTable, MatchesTableIII)
{
    using F = Feature;
    const auto fs = [](std::initializer_list<F> l) {
        return FeatureSet(l);
    };
    EXPECT_EQ(modelFeatures(ModelKind::LLIF),
              fs({F::LID, F::CUB, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::SLIF),
              fs({F::EXD, F::CUB, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::DSRM0),
              fs({F::EXD, F::COBE, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::DLIF),
              fs({F::EXD, F::COBE, F::REV, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::QIF),
              fs({F::EXD, F::COBE, F::REV, F::QDI, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::EIF),
              fs({F::EXD, F::COBE, F::REV, F::EXI, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::Izhikevich),
              fs({F::EXD, F::COBE, F::REV, F::QDI, F::ADT, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::AdEx),
              fs({F::EXD, F::COBE, F::REV, F::EXI, F::ADT, F::SBT,
                  F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::AdExCOBA),
              fs({F::EXD, F::COBA, F::REV, F::EXI, F::ADT, F::SBT,
                  F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::IFPscAlpha),
              fs({F::EXD, F::COBA, F::AR}));
    EXPECT_EQ(modelFeatures(ModelKind::IFCondExpGsfaGrr),
              fs({F::EXD, F::COBE, F::REV, F::AR, F::RR}));
}

TEST(ModelTable, BaselineLifIsCubExd)
{
    EXPECT_EQ(modelFeatures(ModelKind::LIF),
              FeatureSet({Feature::EXD, Feature::CUB}));
}

TEST(ModelTable, DefaultParamsValidateForEveryModel)
{
    for (ModelKind kind : allModels()) {
        const NeuronParams p = defaultParams(kind);
        EXPECT_EQ(p.validate(), "") << modelName(kind);
        EXPECT_EQ(p.features, modelFeatures(kind)) << modelName(kind);
    }
}

TEST(ModelTable, NameRoundTrip)
{
    for (ModelKind kind : allModels())
        EXPECT_EQ(modelFromName(modelName(kind)), kind);
}

TEST(ModelTable, UnknownNameIsNotAnError)
{
    EXPECT_EQ(modelFromName("NoSuchModel"), std::nullopt);
    EXPECT_EQ(modelFromName(""), std::nullopt);
    EXPECT_EQ(modelFromName("lif"), std::nullopt)
        << "model names are case-sensitive";
}

TEST(NeuronParams, ValidationCatchesBadValues)
{
    NeuronParams p = defaultParams(ModelKind::LIF);
    EXPECT_EQ(p.validate(), "");

    NeuronParams bad = p;
    bad.epsM = 1.5;
    EXPECT_NE(bad.validate(), "");

    bad = p;
    bad.numSynapseTypes = 0;
    EXPECT_NE(bad.validate(), "");

    bad = p;
    bad.numSynapseTypes = maxSynapseTypes + 1;
    EXPECT_NE(bad.validate(), "");

    bad = defaultParams(ModelKind::EIF);
    bad.deltaT = 0.0;
    EXPECT_NE(bad.validate(), "");

    bad = defaultParams(ModelKind::QIF);
    bad.vFiring = 0.9;
    EXPECT_NE(bad.validate(), "");

    bad = defaultParams(ModelKind::SLIF);
    bad.arSteps = 0;
    EXPECT_NE(bad.validate(), "");

    bad = p;
    bad.features = FeatureSet{Feature::EXD};
    EXPECT_NE(bad.validate(), ""); // no accumulation feature
}

TEST(NeuronParams, ThresholdDependsOnSpikeInitiation)
{
    EXPECT_DOUBLE_EQ(defaultParams(ModelKind::LIF).threshold(), 1.0);
    const NeuronParams qif = defaultParams(ModelKind::QIF);
    EXPECT_DOUBLE_EQ(qif.threshold(), qif.vFiring);
    const NeuronParams eif = defaultParams(ModelKind::EIF);
    EXPECT_DOUBLE_EQ(eif.threshold(), eif.vFiring);
}

} // namespace
} // namespace flexon
