/**
 * @file
 * Tests for spatially folded Flexon: the Table V microcode programs
 * (lengths, structure, constant-buffer limits), the two-stage timing
 * model (Section V-B), and the headline property — bit-exact
 * equivalence with the baseline Flexon across every Table III model
 * and across randomized configurations.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "features/model_table.hh"
#include "flexon/array.hh"
#include "flexon/neuron.hh"
#include "folded/array.hh"
#include "folded/neuron.hh"
#include "folded/program.hh"

namespace flexon {
namespace {

FlexonConfig
configFor(ModelKind kind)
{
    return FlexonConfig::fromParams(defaultParams(kind));
}

/** Expected control-signal counts for the Table III models (with the
 * default two synapse types where conductances apply). */
TEST(Microcode, ProgramLengthsMatchTableV)
{
    const std::vector<std::pair<ModelKind, size_t>> expected = {
        {ModelKind::LIF, 1},   // CUB + EXD fused (Table V)
        {ModelKind::SLIF, 1},
        {ModelKind::LLIF, 2},  // LID, then the input
        {ModelKind::DSRM0, 3}, // COBE x2 types + EXD
        {ModelKind::DLIF, 7},  // (COBE + 2 REV) x2 + EXD
        {ModelKind::QIF, 8},   // DLIF accumulation + 2 QDI
        {ModelKind::EIF, 9},   // DLIF accumulation + 3 EXI
        {ModelKind::Izhikevich, 9}, // + ADT + 2 QDI
        {ModelKind::AdEx, 11},      // + 2 SBT + 3 EXI
        {ModelKind::AdExCOBA, 15},  // COBA costs 3 ops per type
        {ModelKind::IFPscAlpha, 7}, // COBA x2 (no REV) + EXD
        {ModelKind::IFCondExpGsfaGrr, 13}, // DLIF accum + 6 RR + EXD
    };
    for (const auto &[kind, len] : expected) {
        const MicrocodeProgram p = buildProgram(configFor(kind));
        EXPECT_EQ(p.length(), len) << modelName(kind) << ":\n"
                                   << p.disassemble();
        EXPECT_EQ(p.latencyCycles(), len + 1) << modelName(kind);
    }
}

TEST(Microcode, LifIsTheSingleFusedSignal)
{
    // Table V row "CUB + EXD": v' += eps'_m * v + I in one signal.
    const MicrocodeProgram p = buildProgram(configFor(ModelKind::LIF));
    ASSERT_EQ(p.length(), 1u);
    const MicroOp &op = p.ops()[0];
    EXPECT_EQ(op.a, MulSel::Const);
    EXPECT_EQ(op.b, AddSel::Input);
    EXPECT_EQ(op.s, StateVar::V);
    EXPECT_FALSE(op.exp);
    EXPECT_FALSE(op.sWr);
    EXPECT_TRUE(op.vAcc);
}

TEST(Microcode, QdiUsesTheMultiplierTwice)
{
    // Section V-B: QDI needs two control signals (structural hazard on
    // the single multiplier), so its latency is three cycles.
    const FlexonConfig qif = configFor(ModelKind::QIF);
    const FlexonConfig dlif = configFor(ModelKind::DLIF);
    const MicrocodeProgram pq = buildProgram(qif);
    const MicrocodeProgram pd = buildProgram(dlif);
    EXPECT_EQ(pq.length() - pd.length() + 1, 2u);
    // The second QDI signal multiplies by tmp.
    EXPECT_EQ(pq.ops().back().a, MulSel::Tmp);
}

TEST(Microcode, ExiProgramExponentiates)
{
    const MicrocodeProgram p = buildProgram(configFor(ModelKind::EIF));
    int exp_ops = 0;
    for (const MicroOp &op : p.ops())
        exp_ops += op.exp;
    EXPECT_EQ(exp_ops, 1);
}

TEST(Microcode, ConstantBuffersWithinTableIVLimits)
{
    for (ModelKind kind : allModels()) {
        const MicrocodeProgram p = buildProgram(configFor(kind));
        EXPECT_LE(p.mulConstants().size(), maxMulConstants)
            << modelName(kind);
        EXPECT_LE(p.addConstants().size(), maxAddConstants)
            << modelName(kind);
    }
}

TEST(Microcode, ConstantsAreDeduplicated)
{
    MicrocodeProgram p;
    const uint8_t a = p.mulConst(Fix::fromDouble(0.5));
    const uint8_t b = p.mulConst(Fix::fromDouble(0.5));
    EXPECT_EQ(a, b);
    EXPECT_EQ(p.mulConstants().size(), 1u);
}

TEST(Microcode, MulConstantOverflowIsFatal)
{
    MicrocodeProgram p;
    for (size_t i = 0; i < maxMulConstants; ++i)
        p.mulConst(Fix::fromRaw(static_cast<int64_t>(i)));
    EXPECT_DEATH(p.mulConst(Fix::fromRaw(999)), "overflow");
}

TEST(Microcode, AddConstantOverflowIsFatal)
{
    MicrocodeProgram p;
    for (size_t i = 0; i < maxAddConstants; ++i)
        p.addConst(Fix::fromRaw(static_cast<int64_t>(i)));
    EXPECT_DEATH(p.addConst(Fix::fromRaw(999)), "overflow");
}

TEST(Microcode, DisassemblyListsEverySignal)
{
    const MicrocodeProgram p = buildProgram(configFor(ModelKind::AdEx));
    const std::string dis = p.disassemble();
    EXPECT_NE(dis.find("v_acc"), std::string::npos);
    EXPECT_NE(dis.find("exp(" ), std::string::npos);
    size_t lines = 0;
    for (char c : dis)
        lines += (c == '\n');
    EXPECT_EQ(lines, p.length());
}

/** Drive both implementations with identical inputs; require raw
 * fixed-point equality of all state and identical spikes. */
void
expectBitExact(const FlexonConfig &config, uint64_t seed, int steps)
{
    FlexonNeuron base(config);
    FoldedFlexonNeuron folded(config);
    Rng rng(seed);
    for (int t = 0; t < steps; ++t) {
        std::vector<Fix> in(config.numSynapseTypes, Fix::zero());
        for (auto &x : in) {
            if (rng.bernoulli(0.15))
                x = config.scaleWeight(rng.uniform(-0.3, 0.8));
        }
        const bool fb = base.step(std::span<const Fix>(in));
        const bool ff = folded.step(std::span<const Fix>(in));
        ASSERT_EQ(fb, ff) << config.features.toString() << " step " << t;
        ASSERT_EQ(base.preResetV().raw(), folded.preResetV().raw())
            << config.features.toString() << " step " << t;
        ASSERT_EQ(base.state().v.raw(), folded.state().v.raw());
        ASSERT_EQ(base.state().w.raw(), folded.state().w.raw());
        ASSERT_EQ(base.state().r.raw(), folded.state().r.raw());
        ASSERT_EQ(base.state().cnt, folded.state().cnt);
        for (size_t i = 0; i < config.numSynapseTypes; ++i) {
            ASSERT_EQ(base.state().y[i].raw(),
                      folded.state().y[i].raw());
            ASSERT_EQ(base.state().g[i].raw(),
                      folded.state().g[i].raw());
        }
    }
}

class FoldedBitExact : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(FoldedBitExact, MatchesBaselineBitForBit)
{
    expectBitExact(configFor(GetParam()),
                   42 + static_cast<uint64_t>(GetParam()), 20000);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, FoldedBitExact, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelKind> &info) {
        return std::string(modelName(info.param));
    });

/** Randomized-parameter sweep of the bit-exactness property. */
TEST(FoldedBitExact, RandomizedConfigurations)
{
    Rng rng(20260704);
    for (int trial = 0; trial < 60; ++trial) {
        NeuronParams p;
        p.features.add(rng.bernoulli(0.8) ? Feature::EXD
                                          : Feature::LID);
        const double accum = rng.uniform();
        if (p.features.has(Feature::LID) || accum < 0.34) {
            p.features.add(Feature::CUB);
        } else if (accum < 0.67) {
            p.features.add(Feature::COBE);
        } else {
            p.features.add(Feature::COBA);
        }
        const bool conductance = !p.features.has(Feature::CUB);
        if (conductance && rng.bernoulli(0.6))
            p.features.add(Feature::REV);
        if (p.features.has(Feature::EXD) && rng.bernoulli(0.4))
            p.features.add(rng.bernoulli(0.5) ? Feature::QDI
                                              : Feature::EXI);
        const double stc = rng.uniform();
        if (stc < 0.25) {
            p.features.add(Feature::ADT);
        } else if (stc < 0.5) {
            p.features.add(Feature::SBT).add(Feature::ADT);
        } else if (stc < 0.7) {
            p.features.add(Feature::RR);
        }
        if (rng.bernoulli(0.7))
            p.features.add(Feature::AR);

        p.numSynapseTypes = 1 + rng.uniformInt(maxSynapseTypes);
        p.epsM = rng.uniform(0.001, 0.2);
        p.vLeak = rng.uniform(0.0, 0.01);
        for (size_t i = 0; i < p.numSynapseTypes; ++i)
            p.syn[i] = {rng.uniform(0.005, 0.3),
                        rng.uniform(-2.0, 4.0)};
        p.deltaT = rng.uniform(0.05, 0.5);
        p.vCrit = rng.uniform(0.2, 0.8);
        p.vFiring = rng.uniform(1.1, 2.0);
        p.epsW = rng.uniform(0.0, 0.05);
        p.a = rng.uniform(0.0, 0.05);
        p.vW = rng.uniform(0.0, 0.5);
        p.b = rng.uniform(-0.2, 0.2);
        p.arSteps = 1 + static_cast<uint32_t>(rng.uniformInt(40));
        p.epsR = rng.uniform(0.0, 0.2);
        p.vRR = rng.uniform(-1.0, 0.0);
        p.vAR = rng.uniform(-1.0, 0.0);
        p.qR = rng.uniform(-0.3, 0.0);

        ASSERT_EQ(p.validate(), "") << p.features.toString();
        expectBitExact(FlexonConfig::fromParams(p), rng.next(), 2000);
    }
}

TEST(FlexonArrayTiming, SingleCycleThroughput)
{
    FlexonArray array(12, 250.0e6);
    array.addPopulation(configFor(ModelKind::LIF), 30);
    EXPECT_EQ(array.cyclesPerStep(), 3u); // ceil(30/12)
    std::vector<Fix> input(30 * maxSynapseTypes, Fix::zero());
    std::vector<uint8_t> fired;
    array.step(input, fired);
    array.step(input, fired);
    EXPECT_EQ(array.cycles(), 6u);
    EXPECT_DOUBLE_EQ(array.seconds(), 6.0 / 250.0e6);
}

TEST(FoldedArrayTiming, PipelinedThroughput)
{
    FoldedFlexonArray array(72, 500.0e6);
    array.addPopulation(configFor(ModelKind::DLIF), 144); // 7 ops
    // 2 rounds * 7 ops + 1 drain cycle.
    EXPECT_EQ(array.cyclesPerStep(), 15u);
    std::vector<Fix> input(144 * maxSynapseTypes, Fix::zero());
    std::vector<uint8_t> fired;
    array.step(input, fired);
    EXPECT_EQ(array.cycles(), 15u);
    EXPECT_EQ(array.controlSignals(), 144u * 7u);
}

TEST(FoldedArrayTiming, MixedPopulations)
{
    FoldedFlexonArray array(72, 500.0e6);
    array.addPopulation(configFor(ModelKind::LIF), 72);   // 1 op
    array.addPopulation(configFor(ModelKind::AdEx), 72);  // 11 ops
    EXPECT_EQ(array.cyclesPerStep(), 1u + 11u + 1u);
}

TEST(ArrayEquivalence, ArraysMatchSingleNeurons)
{
    const FlexonConfig config = configFor(ModelKind::Izhikevich);
    FlexonArray base_array(12, 250.0e6);
    FoldedFlexonArray folded_array(72, 500.0e6);
    base_array.addPopulation(config, 20);
    folded_array.addPopulation(config, 20);

    Rng rng(9);
    std::vector<Fix> input(20 * maxSynapseTypes, Fix::zero());
    std::vector<uint8_t> fb, ff;
    for (int t = 0; t < 3000; ++t) {
        for (size_t n = 0; n < 20; ++n) {
            for (size_t i = 0; i < config.numSynapseTypes; ++i) {
                input[n * maxSynapseTypes + i] =
                    rng.bernoulli(0.1)
                        ? config.scaleWeight(rng.uniform(0.0, 0.6))
                        : Fix::zero();
            }
        }
        base_array.step(input, fb);
        folded_array.step(input, ff);
        ASSERT_EQ(fb, ff) << "step " << t;
        for (size_t n = 0; n < 20; ++n) {
            ASSERT_EQ(base_array.neuron(n).state().v.raw(),
                      folded_array.neuron(n).state().v.raw());
        }
    }
}

TEST(Microcode, ValidationCatchesBadPrograms)
{
    // A Const MUL operand addressing an unallocated slot.
    MicrocodeProgram bad_ca;
    MicroOp op;
    op.a = MulSel::Const;
    op.ca = 3; // nothing allocated
    bad_ca.append(op);
    EXPECT_NE(bad_ca.validate(1), "");

    // A Const ADD operand addressing an unallocated slot.
    MicrocodeProgram bad_cb;
    op = MicroOp{};
    op.ca = bad_cb.mulConst(Fix::one());
    op.b = AddSel::Const;
    op.cb = 2;
    bad_cb.append(op);
    EXPECT_NE(bad_cb.validate(1), "");

    // An input select beyond the configured synapse types.
    MicrocodeProgram bad_type;
    op = MicroOp{};
    op.ca = bad_type.mulConst(Fix::one());
    op.b = AddSel::Input;
    op.type = 3;
    bad_type.append(op);
    EXPECT_NE(bad_type.validate(2), "");
    EXPECT_EQ(bad_type.validate(4), "");
}

TEST(Microcode, GeneratedProgramsValidate)
{
    for (ModelKind kind : allModels()) {
        const FlexonConfig config = configFor(kind);
        const MicrocodeProgram p = buildProgram(config);
        EXPECT_EQ(p.validate(config.numSynapseTypes), "")
            << modelName(kind);
    }
}

TEST(FoldedNeuron, RejectsCorruptProgramAtConstruction)
{
    const FlexonConfig config = configFor(ModelKind::LIF);
    MicrocodeProgram corrupt;
    MicroOp op;
    op.a = MulSel::Const;
    op.ca = 9; // unallocated
    corrupt.append(op);
    EXPECT_DEATH(FoldedFlexonNeuron(config, corrupt),
                 "invalid microcode");
}

} // namespace
} // namespace flexon
