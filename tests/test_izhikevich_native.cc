/**
 * @file
 * Tests for the native Izhikevich model: the published regimes'
 * signatures (regular spiking adapts, fast spiking doesn't,
 * chattering bursts), rheobase behaviour, reset semantics, and the
 * f-I utility.
 */

#include <gtest/gtest.h>

#include <vector>

#include "models/izhikevich_native.hh"

namespace flexon {
namespace {

std::vector<int>
spikeTimes(IzhikevichNative &n, double current, int steps)
{
    std::vector<int> times;
    for (int t = 0; t < steps; ++t)
        if (n.step(current))
            times.push_back(t);
    return times;
}

TEST(IzhikevichNative, RestingStateIsQuiet)
{
    IzhikevichNative n(izhikevichRegularSpiking());
    EXPECT_EQ(spikeTimes(n, 0.0, 20000).size(), 0u);
    EXPECT_NEAR(n.v(), -65.0, 6.0); // settles near the fixed point
}

TEST(IzhikevichNative, RegularSpikingAdapts)
{
    IzhikevichNative n(izhikevichRegularSpiking());
    const auto times = spikeTimes(n, 10.0, 20000);
    ASSERT_GE(times.size(), 5u);
    const int first = times[1] - times[0];
    const int last = times.back() - times[times.size() - 2];
    EXPECT_GT(last, first); // spike-frequency adaptation
}

TEST(IzhikevichNative, FastSpikingBarelyAdapts)
{
    IzhikevichNative n(izhikevichFastSpiking());
    const auto times = spikeTimes(n, 10.0, 20000);
    ASSERT_GE(times.size(), 10u);
    // Compare after the onset transient (u settles within ~5
    // spikes for a = 0.1): the steady ISI barely stretches.
    const int early = times[5] - times[4];
    const int last = times.back() - times[times.size() - 2];
    EXPECT_LT(last, early * 1.3);
    // And it fires faster than regular spiking under the same drive.
    IzhikevichNative rs(izhikevichRegularSpiking());
    EXPECT_GT(times.size(), spikeTimes(rs, 10.0, 20000).size());
}

TEST(IzhikevichNative, ChatteringProducesBursts)
{
    IzhikevichNative n(izhikevichChattering());
    const auto times = spikeTimes(n, 10.0, 30000);
    ASSERT_GE(times.size(), 6u);
    // Bursting = bimodal ISIs: some very short (within-burst), some
    // long (between bursts).
    int short_isi = 0, long_isi = 0;
    for (size_t i = 1; i < times.size(); ++i) {
        const int isi = times[i] - times[i - 1];
        (isi < 60 ? short_isi : long_isi) += 1;
    }
    EXPECT_GT(short_isi, 0) << "no within-burst intervals";
    EXPECT_GT(long_isi, 0) << "no between-burst intervals";
}

TEST(IzhikevichNative, ResetToCAndRecoveryJump)
{
    IzhikevichParams p = izhikevichChattering(); // c = -50
    IzhikevichNative n(p);
    double u_before = n.u();
    int guard = 0;
    while (!n.step(10.0) && ++guard < 50000)
        u_before = n.u();
    ASSERT_LT(guard, 50000);
    EXPECT_DOUBLE_EQ(n.v(), -50.0);    // reset to c, not to rest
    EXPECT_GT(n.u(), u_before);        // u += d
}

TEST(IzhikevichNative, FiringRateUtilityMonotone)
{
    double prev = 0.0;
    for (double current : {4.0, 8.0, 12.0, 20.0}) {
        IzhikevichNative n(izhikevichRegularSpiking());
        const double rate = firingRate(n, current, 30000);
        EXPECT_GE(rate, prev) << "I=" << current;
        prev = rate;
    }
    EXPECT_GT(prev, 0.0);
}

TEST(IzhikevichNative, SubRheobaseSilent)
{
    IzhikevichNative n(izhikevichRegularSpiking());
    EXPECT_DOUBLE_EQ(firingRate(n, 1.0, 20000), 0.0);
}

} // namespace
} // namespace flexon
