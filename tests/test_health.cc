/**
 * @file
 * Tests for the runtime health-monitoring layer (PR 9): the --health
 * spec parser, the invariant detectors (NaN, Fix saturation, rate
 * explosion/silence, ring watermark) driven through real sessions
 * with injected faults, the stalled-step watchdog and its crash
 * dump, the live metrics exporter, the plan-decision audit trail,
 * and the leveled/JSONL logging sinks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/health.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/telemetry.hh"
#include "features/model_table.hh"
#include "nets/table1.hh"
#include "snn/auto_engine.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

/** A recurrent LLIF network with background stimulus. */
struct LlifSetup
{
    Network net;
    StimulusGenerator stim{1};
};

LlifSetup
llifNetwork(size_t neurons, double rate, uint64_t seed,
            float weight = 0.8f)
{
    LlifSetup s;
    NeuronParams p = defaultParams(ModelKind::LLIF);
    const size_t pop = s.net.addPopulation("llif", p, neurons);
    Rng rng(seed);
    s.net.connectRandom(pop, pop, 0.05, 0.4, 1, 6, 0, rng);
    s.net.finalize();
    s.stim = StimulusGenerator(seed ^ 0xabcdULL);
    s.stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), rate, weight, 0));
    return s;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(HealthSpec, ParsesPolicyWordsAndPairs)
{
    health::HealthOptions opts;
    std::string err;

    ASSERT_TRUE(health::parseHealthSpec("off", opts, &err));
    EXPECT_FALSE(opts.enabled);

    ASSERT_TRUE(health::parseHealthSpec("abort", opts, &err));
    EXPECT_TRUE(opts.enabled);
    EXPECT_EQ(opts.nan, health::Policy::Abort);
    EXPECT_EQ(opts.saturation, health::Policy::Abort);
    EXPECT_EQ(opts.rate, health::Policy::Abort);
    EXPECT_EQ(opts.ring, health::Policy::Abort);

    ASSERT_TRUE(health::parseHealthSpec(
        "nan:abort,sat:warn,rate:off,sample=16,warmup=8", opts,
        &err));
    EXPECT_EQ(opts.nan, health::Policy::Abort);
    EXPECT_EQ(opts.saturation, health::Policy::Warn);
    EXPECT_EQ(opts.rate, health::Policy::Off);
    EXPECT_EQ(opts.ring, health::Policy::Report);
    EXPECT_EQ(opts.samplePeriod, 16u);
    EXPECT_EQ(opts.rateWarmupSteps, 8u);
    EXPECT_TRUE(opts.enabled);
}

TEST(HealthSpec, RejectsBadTokensAndNamesThem)
{
    health::HealthOptions opts;
    std::string err;
    EXPECT_FALSE(health::parseHealthSpec("nan:maybe", opts, &err));
    EXPECT_EQ(err, "nan:maybe");
    EXPECT_FALSE(health::parseHealthSpec("bogus:warn", opts, &err));
    EXPECT_EQ(err, "bogus:warn");
    EXPECT_FALSE(health::parseHealthSpec("sample=12x", opts, &err));
    EXPECT_EQ(err, "sample=12x");
    EXPECT_FALSE(
        health::parseHealthSpec("nan:warn,,sat:warn", opts, &err));
    EXPECT_FALSE(health::parseHealthSpec("sample=", opts, &err));
}

TEST(HealthSpec, CanonicalSpecStringRoundTrips)
{
    health::HealthOptions opts;
    std::string err;
    ASSERT_TRUE(
        health::parseHealthSpec("nan:abort,sample=7", opts, &err));
    const std::string spec = health::specString(opts);
    EXPECT_EQ(spec, "nan:abort,sat:report,rate:report,ring:report,"
                    "sample=7");
    health::HealthOptions again;
    ASSERT_TRUE(health::parseHealthSpec(spec, again, &err));
    EXPECT_EQ(again.nan, opts.nan);
    EXPECT_EQ(again.samplePeriod, opts.samplePeriod);

    health::HealthOptions off;
    off.enabled = false;
    EXPECT_EQ(health::specString(off), "off");
}

TEST(HealthDetector, NanPoisonIsDetectedInReferenceBackend)
{
    // Vogels-Abbott's EXD/COBE kernel carries a poisoned membrane
    // through subsequent steps (LLIF's max(0, ...) clamp would
    // swallow the NaN before the post-step sweep sees it).
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 11);
    SimulatorOptions opts;
    opts.health.samplePeriod = 1;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(5);
    EXPECT_EQ(sim.healthCounters().nanEvents, 0u);
    ASSERT_TRUE(sim.debugPoisonMembrane(3));
    sim.run(2);
    EXPECT_GT(sim.healthCounters().nanEvents, 0u);
    EXPECT_GT(sim.healthCounters().sweeps, 0u);
    EXPECT_GT(sim.healthCounters().neuronsChecked, 0u);
}

TEST(HealthDetector, FixSaturationStormIsAttributed)
{
    // Stimulus far beyond the Fix<10,22> range rails the fused
    // double->Fix conversion in the flexon kernels every step.
    LlifSetup s = llifNetwork(40, 0.5, 13, 1.0e6f);
    SimulatorOptions opts;
    opts.backend = BackendKind::Flexon;
    opts.health.samplePeriod = 1;
    Simulator sim(s.net, s.stim, opts);
    sim.run(32);
    EXPECT_GT(sim.healthCounters().saturationEvents, 0u);
    EXPECT_GT(sim.healthCounters().saturationHits, 0u);
}

TEST(HealthDetector, RateExplosionAndSilenceTrip)
{
    LlifSetup s = llifNetwork(60, 0.02, 17);
    SimulatorOptions opts;
    opts.health.samplePeriod = 1;
    opts.health.rateWarmupSteps = 2;
    Simulator sim(s.net, s.stim, opts);
    sim.run(4);
    sim.debugInjectRateExplosion();
    sim.run(1);
    EXPECT_GT(sim.healthCounters().rateExplosions, 0u);

    // A network with no drive at all goes (stays) silent.
    LlifSetup quiet = llifNetwork(60, 0.0, 17);
    Simulator still(quiet.net, quiet.stim, opts);
    still.run(8);
    EXPECT_GT(still.healthCounters().rateSilences, 0u);
}

TEST(HealthDetector, RingWatermarkTracksOccupancy)
{
    LlifSetup s = llifNetwork(60, 0.1, 19);
    SimulatorOptions opts;
    opts.health.samplePeriod = 1;
    opts.health.ringWatermark = 1e-9; // any pending write trips it
    Simulator sim(s.net, s.stim, opts);
    sim.run(64);
    EXPECT_GT(sim.healthCounters().ringHighWater, 0u);
    EXPECT_GT(sim.healthCounters().ringPeakFraction, 0.0);
    EXPECT_LE(sim.healthCounters().ringPeakFraction, 1.0);
}

TEST(HealthDetector, DisabledOptionsRunNoSweeps)
{
    LlifSetup s = llifNetwork(40, 0.02, 23);
    SimulatorOptions opts;
    opts.health.enabled = false;
    Simulator sim(s.net, s.stim, opts);
    sim.run(16);
    EXPECT_FALSE(sim.healthActive());
    EXPECT_EQ(sim.healthCounters().sweeps, 0u);
}

TEST(HealthDetector, ResetClearsCounters)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 29);
    SimulatorOptions opts;
    opts.health.samplePeriod = 1;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(4);
    ASSERT_TRUE(sim.debugPoisonMembrane(0));
    sim.run(1);
    EXPECT_GT(sim.healthCounters().nanEvents, 0u);
    sim.reset();
    EXPECT_EQ(sim.healthCounters().nanEvents, 0u);
    EXPECT_EQ(sim.healthCounters().sweeps, 0u);
}

TEST(HealthReport, V5ReportCarriesHealthSection)
{
    LlifSetup s = llifNetwork(40, 0.02, 31);
    SimulatorOptions opts;
    opts.health.samplePeriod = 4;
    Simulator sim(s.net, s.stim, opts);
    sim.run(32);
    const std::string path = "health_report_test.json";
    ASSERT_TRUE(sim.writeRunReport(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(text.find("\"flexon-run-report-v5\""),
              std::string::npos);
    EXPECT_NE(text.find("\"health\""), std::string::npos);
    EXPECT_NE(text.find("\"sweeps\""), std::string::npos);
    EXPECT_NE(text.find("\"watchdog_stalls\""), std::string::npos);
}

TEST(PlanAudit, AutoSessionRecordsDecisions)
{
    LlifSetup s = llifNetwork(80, 0.02, 37);
    SimulatorOptions opts;
    AutoEngineOptions autoOpts;
    autoOpts.engine = EngineKind::Auto;
    autoOpts.decisionWindow = 64;
    AutoSession sim(s.net, s.stim, opts, autoOpts);
    ASSERT_TRUE(sim.adaptive());
    sim.run(256);
    const SimulationSession &session = sim.session();
    EXPECT_GE(session.planDecisionsTotal(), 4u); // step 0 + windows
    ASSERT_FALSE(session.planDecisions().empty());
    const PlanDecision &first = session.planDecisions().front();
    EXPECT_EQ(first.step, 0u);
    EXPECT_GT(first.predictedDenseSec, 0.0);
    EXPECT_GT(first.predictedEventSec, 0.0);
    EXPECT_TRUE(first.chosen == "dense" || first.chosen == "event");

    const std::string path = "plan_audit_test.json";
    ASSERT_TRUE(session.writeRunReport(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(text.find("\"plan_audit\""), std::string::npos);
    EXPECT_NE(text.find("\"decisions\""), std::string::npos);
}

TEST(Watchdog, WarnPolicyCountsStallsAndDumps)
{
    const std::string dump = "watchdog_test_dump.json";
    std::remove(dump.c_str());
    health::setCrashDumpPath(dump);
    health::Watchdog wd(0.05, health::Policy::Warn);
    wd.start();
    // No heartbeat arrives, so the 50 ms budget lapses.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    wd.stop();
    EXPECT_GE(wd.stalls(), 1u);
    const std::string text = slurp(dump);
    std::remove(dump.c_str());
    health::setCrashDumpPath("flexon-crash-dump.json");
    EXPECT_NE(text.find("\"flexon-crash-dump-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"reason\""), std::string::npos);
}

TEST(Watchdog, HeartbeatKeepsItQuiet)
{
    health::Watchdog wd(0.2, health::Policy::Warn);
    wd.start();
    for (int i = 0; i < 20; ++i) {
        health::heartbeat(static_cast<uint64_t>(i));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    wd.stop();
    EXPECT_EQ(wd.stalls(), 0u);
}

TEST(MetricsExporter, WritesPrometheusAndJsonl)
{
    telemetry::Registry registry;
    registry.counter("test.events").add(42);
    registry.gauge("test.depth").set(3.5);

    const std::string path = "metrics_export_test.prom";
    health::MetricsExporter exporter(path, "unit-test");
    ASSERT_TRUE(exporter.exportNow(registry, 128, "dense"));
    ASSERT_TRUE(exporter.exportNow(registry, 256, "dense"));
    EXPECT_EQ(exporter.snapshots(), 2u);

    const std::string prom = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(prom.find("# TYPE flexon_test_events_total counter"),
              std::string::npos);
    EXPECT_NE(
        prom.find("flexon_test_events_total{session=\"unit-test\","
                  "engine=\"dense\"} 42"),
        std::string::npos);
    EXPECT_NE(prom.find("flexon_test_depth{"), std::string::npos);
    EXPECT_NE(prom.find("flexon_export_step{"), std::string::npos);

    const std::string jsonl = slurp(path + ".jsonl");
    std::remove((path + ".jsonl").c_str());
    // One line per snapshot, each a self-contained JSON object.
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    EXPECT_NE(jsonl.find("\"step\":128"), std::string::npos);
    EXPECT_NE(jsonl.find("\"step\":256"), std::string::npos);
}

TEST(MetricsExporter, SessionExportsAtCadence)
{
    LlifSetup s = llifNetwork(40, 0.02, 41);
    SimulatorOptions opts;
    opts.metricsOut = "session_metrics_test.prom";
    opts.metricsEvery = 8;
    opts.label = "cadence-test";
    Simulator sim(s.net, s.stim, opts);
    sim.run(33);
    const std::string prom = slurp(opts.metricsOut);
    std::remove(opts.metricsOut.c_str());
    std::remove((opts.metricsOut + ".jsonl").c_str());
    EXPECT_NE(prom.find("session=\"cadence-test\""),
              std::string::npos);
    EXPECT_NE(prom.find("flexon_export_step{"), std::string::npos);
}

TEST(Logging, JsonlSinkCapturesTaggedLines)
{
    const std::string path = "log_sink_test.jsonl";
    std::remove(path.c_str());
    ASSERT_TRUE(setLogJsonlPath(path));
    logTagged(LogLevel::Info, "health", "unit test line %d", 7);
    logTagged(LogLevel::Warn, "health", "warn line");
    const uint64_t written = logJsonlLines();
    setLogJsonlPath("");
    EXPECT_EQ(written, 2u);
    const std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(text.find("\"component\":\"health\""),
              std::string::npos);
    EXPECT_NE(text.find("unit test line 7"), std::string::npos);
    EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
}

TEST(Logging, MinLevelFiltersBelowThreshold)
{
    const std::string path = "log_level_test.jsonl";
    std::remove(path.c_str());
    const LogLevel old = logMinLevel();
    ASSERT_TRUE(setLogJsonlPath(path));
    setLogMinLevel(LogLevel::Warn);
    logTagged(LogLevel::Info, "test", "filtered");
    logTagged(LogLevel::Warn, "test", "kept");
    const uint64_t written = logJsonlLines();
    setLogMinLevel(old);
    setLogJsonlPath("");
    EXPECT_EQ(written, 1u);
    const std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_EQ(text.find("filtered"), std::string::npos);
    EXPECT_NE(text.find("kept"), std::string::npos);
}

TEST(HealthGlobals, FixSaturationTallyAccumulates)
{
    const uint64_t before = health::fixSaturations();
    health::noteFixSaturation();
    health::noteFixSaturation();
    EXPECT_EQ(health::fixSaturations() - before, 2u);
}

TEST(HealthGlobals, GlobalKillSwitchSuppressesSweeps)
{
    health::setGloballyDisabled(true);
    LlifSetup s = llifNetwork(40, 0.02, 43);
    SimulatorOptions opts;
    opts.health.samplePeriod = 1;
    Simulator sim(s.net, s.stim, opts);
    sim.run(8);
    health::setGloballyDisabled(false);
    EXPECT_FALSE(sim.healthActive());
    EXPECT_EQ(sim.healthCounters().sweeps, 0u);
}

} // namespace
} // namespace flexon
