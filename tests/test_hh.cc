/**
 * @file
 * Tests for the Hodgkin-Huxley reference model: resting stability,
 * gate steady states, the rheobase, spike shape, firing-rate
 * monotonicity, solver agreement, and the cost gap vs the simple
 * models (the paper's Section II-B motivation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/model_table.hh"
#include "models/hh.hh"
#include "models/ode_neuron.hh"

namespace flexon {
namespace {

int
countSpikes(HHNeuron &n, double current, int steps)
{
    int spikes = 0;
    for (int t = 0; t < steps; ++t)
        spikes += n.step(current);
    return spikes;
}

TEST(HodgkinHuxley, RestingStateIsStable)
{
    HHNeuron n;
    for (int t = 0; t < 1000; ++t)
        n.step(0.0);
    EXPECT_NEAR(n.v(), -65.0, 1.0);
    EXPECT_NEAR(n.m(), HHNeuron::mInf(-65.0), 0.01);
    EXPECT_NEAR(n.h(), HHNeuron::hInf(-65.0), 0.01);
    EXPECT_NEAR(n.n(), HHNeuron::nInf(-65.0), 0.01);
}

TEST(HodgkinHuxley, GateSteadyStatesAreSigmoid)
{
    // m activates with depolarization; h inactivates; n activates.
    EXPECT_LT(HHNeuron::mInf(-80.0), HHNeuron::mInf(-40.0));
    EXPECT_LT(HHNeuron::mInf(-40.0), HHNeuron::mInf(0.0));
    EXPECT_GT(HHNeuron::hInf(-80.0), HHNeuron::hInf(-40.0));
    EXPECT_LT(HHNeuron::nInf(-80.0), HHNeuron::nInf(-40.0));
    // All within [0, 1].
    for (double v = -100.0; v <= 50.0; v += 5.0) {
        for (double g : {HHNeuron::mInf(v), HHNeuron::hInf(v),
                         HHNeuron::nInf(v)}) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
    }
}

TEST(HodgkinHuxley, RheobaseBetweenTwoAndTwentyMicroamps)
{
    // Squid-axon HH has a sharp current threshold for repetitive
    // firing in the low-uA/cm^2 range.
    HHNeuron low;
    EXPECT_EQ(countSpikes(low, 1.0, 5000), 0);
    HHNeuron high;
    EXPECT_GT(countSpikes(high, 20.0, 5000), 5);
}

TEST(HodgkinHuxley, SpikeOvershootsZero)
{
    HHNeuron n;
    double peak = -100.0;
    for (int t = 0; t < 2000; ++t) {
        n.step(15.0);
        peak = std::max(peak, n.v());
    }
    EXPECT_GT(peak, 10.0);  // classic ~+40 mV overshoot
    EXPECT_LT(peak, 60.0);  // bounded by E_Na
}

TEST(HodgkinHuxley, FiringRateIncreasesWithCurrent)
{
    HHNeuron a, b;
    const int s10 = countSpikes(a, 10.0, 10000);
    const int s40 = countSpikes(b, 40.0, 10000);
    EXPECT_GT(s10, 0);
    EXPECT_GT(s40, s10);
}

TEST(HodgkinHuxley, EulerAndRkf45Agree)
{
    HHNeuron euler(HHParams{}, SolverKind::Euler);
    HHNeuron rkf(HHParams{}, SolverKind::RKF45);
    const int se = countSpikes(euler, 12.0, 10000);
    const int sr = countSpikes(rkf, 12.0, 10000);
    ASSERT_GT(se, 3);
    EXPECT_NEAR(se, sr, std::max(2.0, 0.05 * se));
}

TEST(HodgkinHuxley, ResetRestoresRest)
{
    HHNeuron n;
    countSpikes(n, 15.0, 500);
    n.reset();
    EXPECT_NEAR(n.v(), -65.0, 1e-9);
    EXPECT_EQ(n.rhsEvaluations(), 0u);
}

TEST(HodgkinHuxley, CostGapMotivatesTheWholePaper)
{
    // Section II-B: HH is too expensive for practical simulations.
    // Compare derivative evaluations per simulation step against the
    // Euler-mode AdEx reference (the most complex supported model).
    HHNeuron hh;
    for (int t = 0; t < 1000; ++t)
        hh.step(10.0);

    OdeNeuron adex(defaultParams(ModelKind::AdEx), SolverKind::Euler);
    for (int t = 0; t < 1000; ++t)
        adex.step(0.3);

    EXPECT_GE(hh.rhsEvaluations(), 10u * adex.rhsEvaluations());
}

} // namespace
} // namespace flexon
