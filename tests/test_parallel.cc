/**
 * @file
 * Tests for the parallel helpers and the threaded reference backend:
 * chunk coverage, and the property that threading changes neither
 * spikes nor state (neurons are independent within a step).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/parallel.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(hits.size(), 4, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInline)
{
    int calls = 0;
    parallelFor(100, 1, [&](size_t begin, size_t end) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, TinyRangesStayInline)
{
    int calls = 0;
    parallelFor(3, 8, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyRange)
{
    bool called_with_work = false;
    parallelFor(0, 4, [&](size_t begin, size_t end) {
        called_with_work = begin < end;
    });
    EXPECT_FALSE(called_with_work);
}

TEST(ThreadedBackend, SpikesIdenticalToSingleThread)
{
    auto run = [](size_t threads) {
        BenchmarkInstance inst =
            buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
        SimulatorOptions opts;
        opts.threads = threads;
        opts.recordSpikes = true;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(800);
        return sim.spikeEvents();
    };
    const auto single = run(1);
    const auto multi = run(4);
    ASSERT_EQ(single.size(), multi.size());
    for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(single[i].step, multi[i].step);
        EXPECT_EQ(single[i].neuron, multi[i].neuron);
    }
    EXPECT_GT(single.size(), 0u);
}

TEST(ThreadedBackend, ContinuousModeAlsoDeterministic)
{
    auto spikes = [](size_t threads) {
        BenchmarkInstance inst =
            buildBenchmark(findBenchmark("Brunel"), 50.0, 5);
        SimulatorOptions opts;
        opts.threads = threads;
        opts.mode = IntegrationMode::Continuous;
        opts.solver = SolverKind::RKF45;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(300);
        return sim.stats().spikes;
    };
    EXPECT_EQ(spikes(1), spikes(3));
}

} // namespace
} // namespace flexon
