/**
 * @file
 * Tests for the parallel helpers and the threaded reference backend:
 * chunk coverage, and the property that threading changes neither
 * spikes nor state (neurons are independent within a step).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/parallel.hh"
#include "common/thread_pool.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(hits.size(), 4, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInline)
{
    int calls = 0;
    parallelFor(100, 1, [&](size_t begin, size_t end) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, TinyRangesStayInline)
{
    int calls = 0;
    parallelFor(3, 8, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyRange)
{
    bool called_with_work = false;
    parallelFor(0, 4, [&](size_t begin, size_t end) {
        called_with_work = begin < end;
    });
    EXPECT_FALSE(called_with_work);
}

TEST(ThreadPool, WorkersPersistAcrossDispatches)
{
    ThreadPool &pool = ThreadPool::global();
    std::atomic<size_t> total{0};
    pool.parallelFor(1000, 4, [&](size_t, size_t begin, size_t end) {
        total.fetch_add(end - begin);
    });
    const size_t workersAfterFirst = pool.workerCount();
    EXPECT_GE(workersAfterFirst, 3u); // lanes - 1, caller is lane 0
    // Subsequent dispatches at the same width reuse the workers
    // instead of spawning fresh threads (the seed's parallelFor
    // spawned `threads` new std::threads per call).
    for (int i = 0; i < 50; ++i) {
        pool.parallelFor(1000, 4,
                         [&](size_t, size_t begin, size_t end) {
                             total.fetch_add(end - begin);
                         });
    }
    EXPECT_EQ(pool.workerCount(), workersAfterFirst);
    EXPECT_EQ(total.load(), 51u * 1000u);
}

TEST(ThreadPool, LaneChunksAreDeterministic)
{
    // The lane -> index-range mapping must be a pure function of
    // (n, lanes): record it twice and compare.
    auto capture = [](size_t n, size_t lanes) {
        std::vector<std::pair<size_t, size_t>> ranges(lanes,
                                                      {0, 0});
        ThreadPool::global().parallelFor(
            n, lanes, [&](size_t lane, size_t begin, size_t end) {
                ranges[lane] = {begin, end};
            });
        return ranges;
    };
    EXPECT_EQ(capture(1003, 4), capture(1003, 4));
    EXPECT_EQ(capture(64, 8), capture(64, 8));
}

TEST(ThreadPool, ForEachLaneRunsEveryLaneOnce)
{
    std::vector<std::atomic<int>> hits(6);
    ThreadPool::global().forEachLane(
        6, [&](size_t lane) { hits[lane].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedDispatchRunsInline)
{
    std::atomic<int> inner{0};
    ThreadPool::global().parallelFor(
        8, 2, [&](size_t, size_t begin, size_t end) {
            // A dispatch from inside a worker must not deadlock.
            ThreadPool::global().parallelFor(
                4, 2, [&](size_t, size_t b, size_t e) {
                    inner.fetch_add(static_cast<int>(e - b));
                });
            (void)begin;
            (void)end;
        });
    EXPECT_EQ(inner.load(), 8); // 2 outer chunks x 4 inner items
}

TEST(ThreadedBackend, SpikesIdenticalToSingleThread)
{
    auto run = [](size_t threads) {
        BenchmarkInstance inst =
            buildBenchmark(findBenchmark("Vogels-Abbott"), 20.0, 5);
        SimulatorOptions opts;
        opts.threads = threads;
        opts.recordSpikes = true;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(800);
        return sim.spikeEvents();
    };
    const auto single = run(1);
    const auto multi = run(4);
    ASSERT_EQ(single.size(), multi.size());
    for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(single[i].step, multi[i].step);
        EXPECT_EQ(single[i].neuron, multi[i].neuron);
    }
    EXPECT_GT(single.size(), 0u);
}

TEST(ThreadedBackend, ContinuousModeAlsoDeterministic)
{
    auto spikes = [](size_t threads) {
        BenchmarkInstance inst =
            buildBenchmark(findBenchmark("Brunel"), 50.0, 5);
        SimulatorOptions opts;
        opts.threads = threads;
        opts.mode = IntegrationMode::Continuous;
        opts.solver = SolverKind::RKF45;
        Simulator sim(inst.network, inst.stimulus, opts);
        sim.run(300);
        return sim.stats().spikes;
    };
    EXPECT_EQ(spikes(1), spikes(3));
}

} // namespace
} // namespace flexon
