/**
 * @file
 * Tests for the SNN topology substrate: population bookkeeping, the
 * wiring builders (random / fixed-fanout), CSR integrity, and delay
 * handling.
 */

#include <gtest/gtest.h>

#include <set>

#include "features/model_table.hh"
#include "snn/network.hh"

namespace flexon {
namespace {

NeuronParams
lif()
{
    return defaultParams(ModelKind::LIF);
}

TEST(Network, PopulationIndexing)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 10);
    const size_t b = net.addPopulation("b", lif(), 5);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(net.numNeurons(), 15u);
    EXPECT_EQ(net.population(0).base, 0u);
    EXPECT_EQ(net.population(1).base, 10u);
    EXPECT_EQ(net.populationOf(3).name, "a");
    EXPECT_EQ(net.populationOf(12).name, "b");
}

TEST(Network, RandomConnectivityDensity)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 100);
    const size_t b = net.addPopulation("b", lif(), 100);
    Rng rng(5);
    net.connectRandom(a, b, 0.1, 0.5, 1, 5, 0, rng);
    net.finalize();
    // Expect ~100*100*0.1 = 1000 synapses (binomial, sd ~30).
    EXPECT_NEAR(net.numSynapses(), 1000.0, 150.0);
}

TEST(Network, RandomConnectivitySkipsSelf)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 50);
    Rng rng(7);
    net.connectRandom(a, a, 1.0, 0.5, 1, 1, 0, rng);
    net.finalize();
    EXPECT_EQ(net.numSynapses(), 50u * 49u);
    for (uint32_t n = 0; n < 50; ++n)
        for (const Synapse &s : net.outgoing(n))
            EXPECT_NE(s.target, n);
}

TEST(Network, FixedFanoutExactDegree)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 20);
    const size_t b = net.addPopulation("b", lif(), 100);
    Rng rng(11);
    net.connectFixedFanout(a, b, 10, 0.5, 1, 3, 0, rng);
    net.finalize();
    EXPECT_EQ(net.numSynapses(), 20u * 10u);
    for (uint32_t n = 0; n < 20; ++n) {
        auto out = net.outgoing(n);
        EXPECT_EQ(out.size(), 10u);
        std::set<uint32_t> targets;
        for (const Synapse &s : out) {
            EXPECT_GE(s.target, 20u); // all in population b
            targets.insert(s.target);
        }
        EXPECT_EQ(targets.size(), 10u) << "targets must be distinct";
    }
}

TEST(Network, CsrPartitionsAllSynapses)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 30);
    Rng rng(13);
    net.connectRandom(a, a, 0.2, 0.5, 1, 8, 0, rng);
    net.finalize();
    size_t total = 0;
    for (uint32_t n = 0; n < net.numNeurons(); ++n)
        total += net.outgoing(n).size();
    EXPECT_EQ(total, net.numSynapses());
}

TEST(Network, WeightsFollowRequestedSign)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 40);
    Rng rng(17);
    net.connectRandom(a, a, 0.3, -0.5, 1, 1, 1, rng);
    net.finalize();
    for (uint32_t n = 0; n < 40; ++n) {
        for (const Synapse &s : net.outgoing(n)) {
            EXPECT_LE(s.weight, 0.0f);
            EXPECT_EQ(s.type, 1);
        }
    }
}

TEST(Network, DelaysWithinRangeAndMaxTracked)
{
    Network net;
    const size_t a = net.addPopulation("a", lif(), 40);
    Rng rng(19);
    net.connectRandom(a, a, 0.3, 0.5, 2, 9, 0, rng);
    net.finalize();
    uint8_t seen_max = 0;
    for (uint32_t n = 0; n < 40; ++n) {
        for (const Synapse &s : net.outgoing(n)) {
            EXPECT_GE(s.delay, 2);
            EXPECT_LE(s.delay, 9);
            seen_max = std::max(seen_max, s.delay);
        }
    }
    EXPECT_EQ(net.maxDelay(), seen_max);
}

TEST(Network, ExplicitSynapses)
{
    Network net;
    net.addPopulation("a", lif(), 4);
    net.addSynapse(0, {1, 0.25f, 3, 0});
    net.addSynapse(0, {2, -0.5f, 1, 1});
    net.addSynapse(3, {0, 1.0f, 1, 0});
    net.finalize();
    EXPECT_EQ(net.outgoing(0).size(), 2u);
    EXPECT_EQ(net.outgoing(1).size(), 0u);
    EXPECT_EQ(net.outgoing(3).size(), 1u);
    EXPECT_FLOAT_EQ(net.outgoing(3)[0].weight, 1.0f);
}

TEST(Network, DeterministicWiringForSameSeed)
{
    auto build = [] {
        Network net;
        const size_t a =
            net.addPopulation("a", defaultParams(ModelKind::LIF), 50);
        Rng rng(23);
        net.connectRandom(a, a, 0.15, 0.5, 1, 10, 0, rng);
        net.finalize();
        return net;
    };
    const Network n1 = build();
    const Network n2 = build();
    ASSERT_EQ(n1.numSynapses(), n2.numSynapses());
    for (uint32_t n = 0; n < n1.numNeurons(); ++n) {
        auto o1 = n1.outgoing(n), o2 = n2.outgoing(n);
        ASSERT_EQ(o1.size(), o2.size());
        for (size_t i = 0; i < o1.size(); ++i) {
            EXPECT_EQ(o1[i].target, o2[i].target);
            EXPECT_EQ(o1[i].weight, o2[i].weight);
            EXPECT_EQ(o1[i].delay, o2[i].delay);
        }
    }
}

} // namespace
} // namespace flexon
