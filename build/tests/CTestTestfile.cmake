# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fixed_point[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_reference_neuron[1]_include.cmake")
include("/root/repo/build/tests/test_flexon_neuron[1]_include.cmake")
include("/root/repo/build/tests/test_folded[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_nets[1]_include.cmake")
include("/root/repo/build/tests/test_hwmodel[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_hh[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_stdp[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_event_driven[1]_include.cmake")
include("/root/repo/build/tests/test_izhikevich_native[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
