file(REMOVE_RECURSE
  "CMakeFiles/test_izhikevich_native.dir/test_izhikevich_native.cc.o"
  "CMakeFiles/test_izhikevich_native.dir/test_izhikevich_native.cc.o.d"
  "test_izhikevich_native"
  "test_izhikevich_native.pdb"
  "test_izhikevich_native[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_izhikevich_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
