# Empty dependencies file for test_izhikevich_native.
# This may be replaced when dependencies are built.
