file(REMOVE_RECURSE
  "CMakeFiles/test_event_driven.dir/test_event_driven.cc.o"
  "CMakeFiles/test_event_driven.dir/test_event_driven.cc.o.d"
  "test_event_driven"
  "test_event_driven.pdb"
  "test_event_driven[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
