# Empty dependencies file for test_event_driven.
# This may be replaced when dependencies are built.
