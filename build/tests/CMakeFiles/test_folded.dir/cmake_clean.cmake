file(REMOVE_RECURSE
  "CMakeFiles/test_folded.dir/test_folded.cc.o"
  "CMakeFiles/test_folded.dir/test_folded.cc.o.d"
  "test_folded"
  "test_folded.pdb"
  "test_folded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
