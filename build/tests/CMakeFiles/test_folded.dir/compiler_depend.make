# Empty compiler generated dependencies file for test_folded.
# This may be replaced when dependencies are built.
