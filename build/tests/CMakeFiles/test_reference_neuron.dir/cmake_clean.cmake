file(REMOVE_RECURSE
  "CMakeFiles/test_reference_neuron.dir/test_reference_neuron.cc.o"
  "CMakeFiles/test_reference_neuron.dir/test_reference_neuron.cc.o.d"
  "test_reference_neuron"
  "test_reference_neuron.pdb"
  "test_reference_neuron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
