# Empty dependencies file for test_reference_neuron.
# This may be replaced when dependencies are built.
