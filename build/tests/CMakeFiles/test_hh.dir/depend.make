# Empty dependencies file for test_hh.
# This may be replaced when dependencies are built.
