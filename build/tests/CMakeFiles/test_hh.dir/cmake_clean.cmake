file(REMOVE_RECURSE
  "CMakeFiles/test_hh.dir/test_hh.cc.o"
  "CMakeFiles/test_hh.dir/test_hh.cc.o.d"
  "test_hh"
  "test_hh.pdb"
  "test_hh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
