# Empty dependencies file for test_stdp.
# This may be replaced when dependencies are built.
