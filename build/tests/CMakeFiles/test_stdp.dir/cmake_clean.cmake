file(REMOVE_RECURSE
  "CMakeFiles/test_stdp.dir/test_stdp.cc.o"
  "CMakeFiles/test_stdp.dir/test_stdp.cc.o.d"
  "test_stdp"
  "test_stdp.pdb"
  "test_stdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
