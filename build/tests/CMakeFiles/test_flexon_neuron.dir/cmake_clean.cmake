file(REMOVE_RECURSE
  "CMakeFiles/test_flexon_neuron.dir/test_flexon_neuron.cc.o"
  "CMakeFiles/test_flexon_neuron.dir/test_flexon_neuron.cc.o.d"
  "test_flexon_neuron"
  "test_flexon_neuron.pdb"
  "test_flexon_neuron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexon_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
