# Empty compiler generated dependencies file for test_flexon_neuron.
# This may be replaced when dependencies are built.
