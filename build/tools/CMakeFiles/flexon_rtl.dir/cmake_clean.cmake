file(REMOVE_RECURSE
  "CMakeFiles/flexon_rtl.dir/flexon_rtl.cc.o"
  "CMakeFiles/flexon_rtl.dir/flexon_rtl.cc.o.d"
  "flexon_rtl"
  "flexon_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
