# Empty dependencies file for flexon_rtl.
# This may be replaced when dependencies are built.
