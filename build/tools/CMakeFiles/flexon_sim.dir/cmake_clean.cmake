file(REMOVE_RECURSE
  "CMakeFiles/flexon_sim.dir/flexon_sim.cc.o"
  "CMakeFiles/flexon_sim.dir/flexon_sim.cc.o.d"
  "flexon_sim"
  "flexon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
