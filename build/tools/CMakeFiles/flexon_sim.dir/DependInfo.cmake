
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/flexon_sim.cc" "tools/CMakeFiles/flexon_sim.dir/flexon_sim.cc.o" "gcc" "tools/CMakeFiles/flexon_sim.dir/flexon_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nets/CMakeFiles/flexon_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/snn/CMakeFiles/flexon_snn.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/flexon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/flexon_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/flexon_models.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexon_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/folded/CMakeFiles/flexon_folded.dir/DependInfo.cmake"
  "/root/repo/build/src/flexon/CMakeFiles/flexon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/flexon_features.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/flexon_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
