# Empty compiler generated dependencies file for flexon_sim.
# This may be replaced when dependencies are built.
