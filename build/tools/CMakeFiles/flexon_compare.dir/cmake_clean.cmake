file(REMOVE_RECURSE
  "CMakeFiles/flexon_compare.dir/flexon_compare.cc.o"
  "CMakeFiles/flexon_compare.dir/flexon_compare.cc.o.d"
  "flexon_compare"
  "flexon_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
