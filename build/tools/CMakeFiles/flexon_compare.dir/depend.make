# Empty dependencies file for flexon_compare.
# This may be replaced when dependencies are built.
