# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/flexon_sim" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_benchmark_reference "/root/repo/build/tools/flexon_sim" "--benchmark" "Vogels-Abbott" "--scale" "40" "--steps" "200" "--backend" "reference" "--raster")
set_tests_properties(cli_benchmark_reference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_benchmark_folded "/root/repo/build/tools/flexon_sim" "--benchmark" "Brunel" "--scale" "50" "--steps" "200" "--backend" "folded" "--threads" "2")
set_tests_properties(cli_benchmark_folded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_save_load "sh" "-c" "/root/repo/build/tools/flexon_sim --benchmark Nowotny                  --scale 20 --steps 50 --save net.fxn &&                  /root/repo/build/tools/flexon_sim --load net.fxn --steps 50                  --backend flexon")
set_tests_properties(cli_save_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script "/root/repo/build/tools/flexon_sim" "--script" "/root/repo/examples/networks/ei_balance.fxs" "--steps" "300" "--backend" "folded" "--raster")
set_tests_properties(cli_script PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script_izhikevich "/root/repo/build/tools/flexon_sim" "--script" "/root/repo/examples/networks/izhikevich_column.fxs" "--steps" "300" "--backend" "flexon")
set_tests_properties(cli_script_izhikevich PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rtl_list "/root/repo/build/tools/flexon_rtl" "--list")
set_tests_properties(cli_rtl_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rtl_adex "/root/repo/build/tools/flexon_rtl" "AdEx" "adex_core")
set_tests_properties(cli_rtl_adex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rtl_testbench "/root/repo/build/tools/flexon_rtl" "--testbench" "LIF")
set_tests_properties(cli_rtl_testbench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/flexon_sim" "--benchmark" "Brunel" "--scale" "100" "--steps" "100" "--backend" "folded" "--stats")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare_hw "/root/repo/build/tools/flexon_compare" "--benchmark" "Vogels-Abbott" "--scale" "40" "--steps" "500" "--a" "flexon" "--b" "folded")
set_tests_properties(cli_compare_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare_ref "/root/repo/build/tools/flexon_compare" "--benchmark" "Brunel" "--scale" "50" "--steps" "500" "--a" "reference" "--b" "folded")
set_tests_properties(cli_compare_ref PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;42;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_flag "sh" "-c" "! /root/repo/build/tools/flexon_sim --bogus")
set_tests_properties(cli_bad_flag PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_requires_source "sh" "-c" "! /root/repo/build/tools/flexon_sim --steps 10")
set_tests_properties(cli_requires_source PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;47;add_test;/root/repo/tools/CMakeLists.txt;0;")
