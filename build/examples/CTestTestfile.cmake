# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_izhikevich_behaviors "/root/repo/build/examples/izhikevich_behaviors")
set_tests_properties(example_izhikevich_behaviors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adex_patterns "/root/repo/build/examples/adex_patterns")
set_tests_properties(example_adex_patterns PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_model "/root/repo/build/examples/custom_model")
set_tests_properties(example_custom_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vogels_abbott "/root/repo/build/examples/vogels_abbott")
set_tests_properties(example_vogels_abbott PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_offload "/root/repo/build/examples/hybrid_offload")
set_tests_properties(example_hybrid_offload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stdp_learning "/root/repo/build/examples/stdp_learning")
set_tests_properties(example_stdp_learning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_membrane_traces "/root/repo/build/examples/membrane_traces")
set_tests_properties(example_membrane_traces PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
