# Empty compiler generated dependencies file for vogels_abbott.
# This may be replaced when dependencies are built.
