file(REMOVE_RECURSE
  "CMakeFiles/vogels_abbott.dir/vogels_abbott.cc.o"
  "CMakeFiles/vogels_abbott.dir/vogels_abbott.cc.o.d"
  "vogels_abbott"
  "vogels_abbott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vogels_abbott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
