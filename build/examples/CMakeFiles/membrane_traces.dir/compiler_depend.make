# Empty compiler generated dependencies file for membrane_traces.
# This may be replaced when dependencies are built.
