file(REMOVE_RECURSE
  "CMakeFiles/membrane_traces.dir/membrane_traces.cc.o"
  "CMakeFiles/membrane_traces.dir/membrane_traces.cc.o.d"
  "membrane_traces"
  "membrane_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membrane_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
