file(REMOVE_RECURSE
  "CMakeFiles/adex_patterns.dir/adex_patterns.cc.o"
  "CMakeFiles/adex_patterns.dir/adex_patterns.cc.o.d"
  "adex_patterns"
  "adex_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adex_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
