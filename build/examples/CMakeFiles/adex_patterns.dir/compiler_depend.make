# Empty compiler generated dependencies file for adex_patterns.
# This may be replaced when dependencies are built.
