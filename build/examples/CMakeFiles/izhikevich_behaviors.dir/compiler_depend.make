# Empty compiler generated dependencies file for izhikevich_behaviors.
# This may be replaced when dependencies are built.
