file(REMOVE_RECURSE
  "CMakeFiles/izhikevich_behaviors.dir/izhikevich_behaviors.cc.o"
  "CMakeFiles/izhikevich_behaviors.dir/izhikevich_behaviors.cc.o.d"
  "izhikevich_behaviors"
  "izhikevich_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/izhikevich_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
