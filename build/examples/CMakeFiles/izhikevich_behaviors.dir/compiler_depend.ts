# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for izhikevich_behaviors.
