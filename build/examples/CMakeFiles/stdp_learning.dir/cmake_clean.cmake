file(REMOVE_RECURSE
  "CMakeFiles/stdp_learning.dir/stdp_learning.cc.o"
  "CMakeFiles/stdp_learning.dir/stdp_learning.cc.o.d"
  "stdp_learning"
  "stdp_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stdp_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
