# Empty compiler generated dependencies file for stdp_learning.
# This may be replaced when dependencies are built.
