# Empty compiler generated dependencies file for abl_solver_accuracy.
# This may be replaced when dependencies are built.
