file(REMOVE_RECURSE
  "CMakeFiles/abl_solver_accuracy.dir/abl_solver_accuracy.cc.o"
  "CMakeFiles/abl_solver_accuracy.dir/abl_solver_accuracy.cc.o.d"
  "abl_solver_accuracy"
  "abl_solver_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_solver_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
