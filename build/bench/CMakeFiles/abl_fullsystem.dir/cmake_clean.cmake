file(REMOVE_RECURSE
  "CMakeFiles/abl_fullsystem.dir/abl_fullsystem.cc.o"
  "CMakeFiles/abl_fullsystem.dir/abl_fullsystem.cc.o.d"
  "abl_fullsystem"
  "abl_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
