# Empty compiler generated dependencies file for abl_fullsystem.
# This may be replaced when dependencies are built.
