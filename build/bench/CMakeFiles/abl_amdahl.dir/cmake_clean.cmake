file(REMOVE_RECURSE
  "CMakeFiles/abl_amdahl.dir/abl_amdahl.cc.o"
  "CMakeFiles/abl_amdahl.dir/abl_amdahl.cc.o.d"
  "abl_amdahl"
  "abl_amdahl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_amdahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
