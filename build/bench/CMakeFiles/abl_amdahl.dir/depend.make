# Empty dependencies file for abl_amdahl.
# This may be replaced when dependencies are built.
