file(REMOVE_RECURSE
  "CMakeFiles/tab06_arrays.dir/tab06_arrays.cc.o"
  "CMakeFiles/tab06_arrays.dir/tab06_arrays.cc.o.d"
  "tab06_arrays"
  "tab06_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
