# Empty dependencies file for tab06_arrays.
# This may be replaced when dependencies are built.
