# Empty compiler generated dependencies file for micro_neuron.
# This may be replaced when dependencies are built.
