file(REMOVE_RECURSE
  "CMakeFiles/micro_neuron.dir/micro_neuron.cc.o"
  "CMakeFiles/micro_neuron.dir/micro_neuron.cc.o.d"
  "micro_neuron"
  "micro_neuron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
