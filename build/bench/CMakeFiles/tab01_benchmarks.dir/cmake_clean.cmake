file(REMOVE_RECURSE
  "CMakeFiles/tab01_benchmarks.dir/tab01_benchmarks.cc.o"
  "CMakeFiles/tab01_benchmarks.dir/tab01_benchmarks.cc.o.d"
  "tab01_benchmarks"
  "tab01_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
