# Empty dependencies file for abl_weight_precision.
# This may be replaced when dependencies are built.
