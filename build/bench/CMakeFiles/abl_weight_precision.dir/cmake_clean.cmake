file(REMOVE_RECURSE
  "CMakeFiles/abl_weight_precision.dir/abl_weight_precision.cc.o"
  "CMakeFiles/abl_weight_precision.dir/abl_weight_precision.cc.o.d"
  "abl_weight_precision"
  "abl_weight_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weight_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
