# Empty compiler generated dependencies file for fig04_08_features.
# This may be replaced when dependencies are built.
