file(REMOVE_RECURSE
  "CMakeFiles/fig04_08_features.dir/fig04_08_features.cc.o"
  "CMakeFiles/fig04_08_features.dir/fig04_08_features.cc.o.d"
  "fig04_08_features"
  "fig04_08_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_08_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
