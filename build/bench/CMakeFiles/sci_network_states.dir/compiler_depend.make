# Empty compiler generated dependencies file for sci_network_states.
# This may be replaced when dependencies are built.
