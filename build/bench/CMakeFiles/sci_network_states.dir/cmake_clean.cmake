file(REMOVE_RECURSE
  "CMakeFiles/sci_network_states.dir/sci_network_states.cc.o"
  "CMakeFiles/sci_network_states.dir/sci_network_states.cc.o.d"
  "sci_network_states"
  "sci_network_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_network_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
