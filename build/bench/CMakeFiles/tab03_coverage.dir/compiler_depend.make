# Empty compiler generated dependencies file for tab03_coverage.
# This may be replaced when dependencies are built.
