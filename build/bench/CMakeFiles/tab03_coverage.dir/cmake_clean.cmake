file(REMOVE_RECURSE
  "CMakeFiles/tab03_coverage.dir/tab03_coverage.cc.o"
  "CMakeFiles/tab03_coverage.dir/tab03_coverage.cc.o.d"
  "tab03_coverage"
  "tab03_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
