# Empty compiler generated dependencies file for micro_fastexp.
# This may be replaced when dependencies are built.
