file(REMOVE_RECURSE
  "CMakeFiles/micro_fastexp.dir/micro_fastexp.cc.o"
  "CMakeFiles/micro_fastexp.dir/micro_fastexp.cc.o.d"
  "micro_fastexp"
  "micro_fastexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fastexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
