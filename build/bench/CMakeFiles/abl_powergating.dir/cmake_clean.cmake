file(REMOVE_RECURSE
  "CMakeFiles/abl_powergating.dir/abl_powergating.cc.o"
  "CMakeFiles/abl_powergating.dir/abl_powergating.cc.o.d"
  "abl_powergating"
  "abl_powergating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_powergating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
