# Empty dependencies file for abl_powergating.
# This may be replaced when dependencies are built.
