file(REMOVE_RECURSE
  "CMakeFiles/abl_izhikevich_fidelity.dir/abl_izhikevich_fidelity.cc.o"
  "CMakeFiles/abl_izhikevich_fidelity.dir/abl_izhikevich_fidelity.cc.o.d"
  "abl_izhikevich_fidelity"
  "abl_izhikevich_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_izhikevich_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
