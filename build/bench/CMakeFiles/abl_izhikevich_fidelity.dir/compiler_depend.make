# Empty compiler generated dependencies file for abl_izhikevich_fidelity.
# This may be replaced when dependencies are built.
