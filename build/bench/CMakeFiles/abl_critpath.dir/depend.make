# Empty dependencies file for abl_critpath.
# This may be replaced when dependencies are built.
