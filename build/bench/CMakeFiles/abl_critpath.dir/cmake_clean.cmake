file(REMOVE_RECURSE
  "CMakeFiles/abl_critpath.dir/abl_critpath.cc.o"
  "CMakeFiles/abl_critpath.dir/abl_critpath.cc.o.d"
  "abl_critpath"
  "abl_critpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_critpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
