file(REMOVE_RECURSE
  "CMakeFiles/abl_truncation.dir/abl_truncation.cc.o"
  "CMakeFiles/abl_truncation.dir/abl_truncation.cc.o.d"
  "abl_truncation"
  "abl_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
