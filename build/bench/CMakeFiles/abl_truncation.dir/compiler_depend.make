# Empty compiler generated dependencies file for abl_truncation.
# This may be replaced when dependencies are built.
