file(REMOVE_RECURSE
  "CMakeFiles/tab05_microcode.dir/tab05_microcode.cc.o"
  "CMakeFiles/tab05_microcode.dir/tab05_microcode.cc.o.d"
  "tab05_microcode"
  "tab05_microcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_microcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
