# Empty dependencies file for tab05_microcode.
# This may be replaced when dependencies are built.
