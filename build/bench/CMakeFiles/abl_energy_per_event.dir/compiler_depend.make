# Empty compiler generated dependencies file for abl_energy_per_event.
# This may be replaced when dependencies are built.
