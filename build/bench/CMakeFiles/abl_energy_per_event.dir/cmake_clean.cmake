file(REMOVE_RECURSE
  "CMakeFiles/abl_energy_per_event.dir/abl_energy_per_event.cc.o"
  "CMakeFiles/abl_energy_per_event.dir/abl_energy_per_event.cc.o.d"
  "abl_energy_per_event"
  "abl_energy_per_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_energy_per_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
