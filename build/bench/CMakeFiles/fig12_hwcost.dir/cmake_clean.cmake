file(REMOVE_RECURSE
  "CMakeFiles/fig12_hwcost.dir/fig12_hwcost.cc.o"
  "CMakeFiles/fig12_hwcost.dir/fig12_hwcost.cc.o.d"
  "fig12_hwcost"
  "fig12_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
