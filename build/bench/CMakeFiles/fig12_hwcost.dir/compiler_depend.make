# Empty compiler generated dependencies file for fig12_hwcost.
# This may be replaced when dependencies are built.
