# Empty compiler generated dependencies file for abl_folded_width.
# This may be replaced when dependencies are built.
