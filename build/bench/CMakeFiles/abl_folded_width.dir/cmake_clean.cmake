file(REMOVE_RECURSE
  "CMakeFiles/abl_folded_width.dir/abl_folded_width.cc.o"
  "CMakeFiles/abl_folded_width.dir/abl_folded_width.cc.o.d"
  "abl_folded_width"
  "abl_folded_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_folded_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
