# Empty compiler generated dependencies file for abl_event_driven.
# This may be replaced when dependencies are built.
