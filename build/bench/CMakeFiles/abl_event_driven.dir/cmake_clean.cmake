file(REMOVE_RECURSE
  "CMakeFiles/abl_event_driven.dir/abl_event_driven.cc.o"
  "CMakeFiles/abl_event_driven.dir/abl_event_driven.cc.o.d"
  "abl_event_driven"
  "abl_event_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_event_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
