src/hwmodel/CMakeFiles/flexon_hw.dir/unit_costs.cc.o: \
 /root/repo/src/hwmodel/unit_costs.cc /usr/include/stdc-predef.h \
 /root/repo/src/hwmodel/unit_costs.hh
