file(REMOVE_RECURSE
  "libflexon_hw.a"
)
