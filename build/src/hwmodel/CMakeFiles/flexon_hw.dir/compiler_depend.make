# Empty compiler generated dependencies file for flexon_hw.
# This may be replaced when dependencies are built.
