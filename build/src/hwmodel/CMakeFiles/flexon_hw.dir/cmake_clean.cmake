file(REMOVE_RECURSE
  "CMakeFiles/flexon_hw.dir/array_cost.cc.o"
  "CMakeFiles/flexon_hw.dir/array_cost.cc.o.d"
  "CMakeFiles/flexon_hw.dir/baselines.cc.o"
  "CMakeFiles/flexon_hw.dir/baselines.cc.o.d"
  "CMakeFiles/flexon_hw.dir/datapath_cost.cc.o"
  "CMakeFiles/flexon_hw.dir/datapath_cost.cc.o.d"
  "CMakeFiles/flexon_hw.dir/full_system.cc.o"
  "CMakeFiles/flexon_hw.dir/full_system.cc.o.d"
  "CMakeFiles/flexon_hw.dir/sram.cc.o"
  "CMakeFiles/flexon_hw.dir/sram.cc.o.d"
  "CMakeFiles/flexon_hw.dir/timing.cc.o"
  "CMakeFiles/flexon_hw.dir/timing.cc.o.d"
  "CMakeFiles/flexon_hw.dir/unit_costs.cc.o"
  "CMakeFiles/flexon_hw.dir/unit_costs.cc.o.d"
  "libflexon_hw.a"
  "libflexon_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
