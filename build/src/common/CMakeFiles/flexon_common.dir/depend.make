# Empty dependencies file for flexon_common.
# This may be replaced when dependencies are built.
