file(REMOVE_RECURSE
  "libflexon_common.a"
)
