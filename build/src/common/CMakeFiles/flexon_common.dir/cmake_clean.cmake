file(REMOVE_RECURSE
  "CMakeFiles/flexon_common.dir/debug.cc.o"
  "CMakeFiles/flexon_common.dir/debug.cc.o.d"
  "CMakeFiles/flexon_common.dir/logging.cc.o"
  "CMakeFiles/flexon_common.dir/logging.cc.o.d"
  "CMakeFiles/flexon_common.dir/random.cc.o"
  "CMakeFiles/flexon_common.dir/random.cc.o.d"
  "CMakeFiles/flexon_common.dir/stats.cc.o"
  "CMakeFiles/flexon_common.dir/stats.cc.o.d"
  "CMakeFiles/flexon_common.dir/table.cc.o"
  "CMakeFiles/flexon_common.dir/table.cc.o.d"
  "libflexon_common.a"
  "libflexon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
