# Empty compiler generated dependencies file for flexon_core.
# This may be replaced when dependencies are built.
