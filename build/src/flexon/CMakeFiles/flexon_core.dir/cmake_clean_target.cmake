file(REMOVE_RECURSE
  "libflexon_core.a"
)
