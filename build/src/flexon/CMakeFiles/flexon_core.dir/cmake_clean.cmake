file(REMOVE_RECURSE
  "CMakeFiles/flexon_core.dir/array.cc.o"
  "CMakeFiles/flexon_core.dir/array.cc.o.d"
  "CMakeFiles/flexon_core.dir/config.cc.o"
  "CMakeFiles/flexon_core.dir/config.cc.o.d"
  "CMakeFiles/flexon_core.dir/neuron.cc.o"
  "CMakeFiles/flexon_core.dir/neuron.cc.o.d"
  "libflexon_core.a"
  "libflexon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
