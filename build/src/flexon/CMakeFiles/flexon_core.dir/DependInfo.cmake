
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flexon/array.cc" "src/flexon/CMakeFiles/flexon_core.dir/array.cc.o" "gcc" "src/flexon/CMakeFiles/flexon_core.dir/array.cc.o.d"
  "/root/repo/src/flexon/config.cc" "src/flexon/CMakeFiles/flexon_core.dir/config.cc.o" "gcc" "src/flexon/CMakeFiles/flexon_core.dir/config.cc.o.d"
  "/root/repo/src/flexon/neuron.cc" "src/flexon/CMakeFiles/flexon_core.dir/neuron.cc.o" "gcc" "src/flexon/CMakeFiles/flexon_core.dir/neuron.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/flexon_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/flexon_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
