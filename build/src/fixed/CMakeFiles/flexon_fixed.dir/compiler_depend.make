# Empty compiler generated dependencies file for flexon_fixed.
# This may be replaced when dependencies are built.
