file(REMOVE_RECURSE
  "CMakeFiles/flexon_fixed.dir/fast_exp.cc.o"
  "CMakeFiles/flexon_fixed.dir/fast_exp.cc.o.d"
  "libflexon_fixed.a"
  "libflexon_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
