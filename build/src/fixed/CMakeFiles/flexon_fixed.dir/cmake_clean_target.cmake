file(REMOVE_RECURSE
  "libflexon_fixed.a"
)
