# Empty dependencies file for flexon_nets.
# This may be replaced when dependencies are built.
