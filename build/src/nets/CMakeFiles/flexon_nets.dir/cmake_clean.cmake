file(REMOVE_RECURSE
  "CMakeFiles/flexon_nets.dir/table1.cc.o"
  "CMakeFiles/flexon_nets.dir/table1.cc.o.d"
  "libflexon_nets.a"
  "libflexon_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
