file(REMOVE_RECURSE
  "libflexon_nets.a"
)
