file(REMOVE_RECURSE
  "libflexon_folded.a"
)
