file(REMOVE_RECURSE
  "CMakeFiles/flexon_folded.dir/array.cc.o"
  "CMakeFiles/flexon_folded.dir/array.cc.o.d"
  "CMakeFiles/flexon_folded.dir/neuron.cc.o"
  "CMakeFiles/flexon_folded.dir/neuron.cc.o.d"
  "CMakeFiles/flexon_folded.dir/program.cc.o"
  "CMakeFiles/flexon_folded.dir/program.cc.o.d"
  "CMakeFiles/flexon_folded.dir/trace.cc.o"
  "CMakeFiles/flexon_folded.dir/trace.cc.o.d"
  "libflexon_folded.a"
  "libflexon_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
