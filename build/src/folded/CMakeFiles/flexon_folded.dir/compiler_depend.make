# Empty compiler generated dependencies file for flexon_folded.
# This may be replaced when dependencies are built.
