file(REMOVE_RECURSE
  "libflexon_solvers.a"
)
