file(REMOVE_RECURSE
  "CMakeFiles/flexon_solvers.dir/rkf45.cc.o"
  "CMakeFiles/flexon_solvers.dir/rkf45.cc.o.d"
  "libflexon_solvers.a"
  "libflexon_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
