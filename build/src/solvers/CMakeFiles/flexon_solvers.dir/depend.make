# Empty dependencies file for flexon_solvers.
# This may be replaced when dependencies are built.
