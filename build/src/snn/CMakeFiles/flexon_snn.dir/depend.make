# Empty dependencies file for flexon_snn.
# This may be replaced when dependencies are built.
