# Empty compiler generated dependencies file for flexon_snn.
# This may be replaced when dependencies are built.
