file(REMOVE_RECURSE
  "CMakeFiles/flexon_snn.dir/backend.cc.o"
  "CMakeFiles/flexon_snn.dir/backend.cc.o.d"
  "CMakeFiles/flexon_snn.dir/event_driven.cc.o"
  "CMakeFiles/flexon_snn.dir/event_driven.cc.o.d"
  "CMakeFiles/flexon_snn.dir/network.cc.o"
  "CMakeFiles/flexon_snn.dir/network.cc.o.d"
  "CMakeFiles/flexon_snn.dir/serialize.cc.o"
  "CMakeFiles/flexon_snn.dir/serialize.cc.o.d"
  "CMakeFiles/flexon_snn.dir/simulator.cc.o"
  "CMakeFiles/flexon_snn.dir/simulator.cc.o.d"
  "CMakeFiles/flexon_snn.dir/stdp.cc.o"
  "CMakeFiles/flexon_snn.dir/stdp.cc.o.d"
  "CMakeFiles/flexon_snn.dir/stimulus.cc.o"
  "CMakeFiles/flexon_snn.dir/stimulus.cc.o.d"
  "libflexon_snn.a"
  "libflexon_snn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
