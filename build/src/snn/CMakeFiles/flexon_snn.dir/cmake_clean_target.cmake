file(REMOVE_RECURSE
  "libflexon_snn.a"
)
