
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snn/backend.cc" "src/snn/CMakeFiles/flexon_snn.dir/backend.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/backend.cc.o.d"
  "/root/repo/src/snn/event_driven.cc" "src/snn/CMakeFiles/flexon_snn.dir/event_driven.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/event_driven.cc.o.d"
  "/root/repo/src/snn/network.cc" "src/snn/CMakeFiles/flexon_snn.dir/network.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/network.cc.o.d"
  "/root/repo/src/snn/serialize.cc" "src/snn/CMakeFiles/flexon_snn.dir/serialize.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/serialize.cc.o.d"
  "/root/repo/src/snn/simulator.cc" "src/snn/CMakeFiles/flexon_snn.dir/simulator.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/simulator.cc.o.d"
  "/root/repo/src/snn/stdp.cc" "src/snn/CMakeFiles/flexon_snn.dir/stdp.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/stdp.cc.o.d"
  "/root/repo/src/snn/stimulus.cc" "src/snn/CMakeFiles/flexon_snn.dir/stimulus.cc.o" "gcc" "src/snn/CMakeFiles/flexon_snn.dir/stimulus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/flexon_features.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/flexon_models.dir/DependInfo.cmake"
  "/root/repo/build/src/flexon/CMakeFiles/flexon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/folded/CMakeFiles/flexon_folded.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexon_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/flexon_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
