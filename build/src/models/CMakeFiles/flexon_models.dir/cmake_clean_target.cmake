file(REMOVE_RECURSE
  "libflexon_models.a"
)
