
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/analytic.cc" "src/models/CMakeFiles/flexon_models.dir/analytic.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/analytic.cc.o.d"
  "/root/repo/src/models/hh.cc" "src/models/CMakeFiles/flexon_models.dir/hh.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/hh.cc.o.d"
  "/root/repo/src/models/izhikevich_native.cc" "src/models/CMakeFiles/flexon_models.dir/izhikevich_native.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/izhikevich_native.cc.o.d"
  "/root/repo/src/models/ode_neuron.cc" "src/models/CMakeFiles/flexon_models.dir/ode_neuron.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/ode_neuron.cc.o.d"
  "/root/repo/src/models/population.cc" "src/models/CMakeFiles/flexon_models.dir/population.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/population.cc.o.d"
  "/root/repo/src/models/reference_neuron.cc" "src/models/CMakeFiles/flexon_models.dir/reference_neuron.cc.o" "gcc" "src/models/CMakeFiles/flexon_models.dir/reference_neuron.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/flexon_features.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/flexon_solvers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
