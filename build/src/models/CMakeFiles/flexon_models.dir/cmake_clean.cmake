file(REMOVE_RECURSE
  "CMakeFiles/flexon_models.dir/analytic.cc.o"
  "CMakeFiles/flexon_models.dir/analytic.cc.o.d"
  "CMakeFiles/flexon_models.dir/hh.cc.o"
  "CMakeFiles/flexon_models.dir/hh.cc.o.d"
  "CMakeFiles/flexon_models.dir/izhikevich_native.cc.o"
  "CMakeFiles/flexon_models.dir/izhikevich_native.cc.o.d"
  "CMakeFiles/flexon_models.dir/ode_neuron.cc.o"
  "CMakeFiles/flexon_models.dir/ode_neuron.cc.o.d"
  "CMakeFiles/flexon_models.dir/population.cc.o"
  "CMakeFiles/flexon_models.dir/population.cc.o.d"
  "CMakeFiles/flexon_models.dir/reference_neuron.cc.o"
  "CMakeFiles/flexon_models.dir/reference_neuron.cc.o.d"
  "libflexon_models.a"
  "libflexon_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
