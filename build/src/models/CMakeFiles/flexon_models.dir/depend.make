# Empty dependencies file for flexon_models.
# This may be replaced when dependencies are built.
