# Empty compiler generated dependencies file for flexon_frontend.
# This may be replaced when dependencies are built.
