file(REMOVE_RECURSE
  "CMakeFiles/flexon_frontend.dir/script.cc.o"
  "CMakeFiles/flexon_frontend.dir/script.cc.o.d"
  "libflexon_frontend.a"
  "libflexon_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
