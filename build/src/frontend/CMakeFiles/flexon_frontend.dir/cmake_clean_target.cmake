file(REMOVE_RECURSE
  "libflexon_frontend.a"
)
