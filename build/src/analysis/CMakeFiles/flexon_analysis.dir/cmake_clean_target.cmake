file(REMOVE_RECURSE
  "libflexon_analysis.a"
)
