file(REMOVE_RECURSE
  "CMakeFiles/flexon_analysis.dir/raster.cc.o"
  "CMakeFiles/flexon_analysis.dir/raster.cc.o.d"
  "CMakeFiles/flexon_analysis.dir/spike_train.cc.o"
  "CMakeFiles/flexon_analysis.dir/spike_train.cc.o.d"
  "CMakeFiles/flexon_analysis.dir/trace_plot.cc.o"
  "CMakeFiles/flexon_analysis.dir/trace_plot.cc.o.d"
  "libflexon_analysis.a"
  "libflexon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
