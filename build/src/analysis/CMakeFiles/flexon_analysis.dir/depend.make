# Empty dependencies file for flexon_analysis.
# This may be replaced when dependencies are built.
