file(REMOVE_RECURSE
  "CMakeFiles/flexon_backend.dir/bio_params.cc.o"
  "CMakeFiles/flexon_backend.dir/bio_params.cc.o.d"
  "CMakeFiles/flexon_backend.dir/codegen.cc.o"
  "CMakeFiles/flexon_backend.dir/codegen.cc.o.d"
  "CMakeFiles/flexon_backend.dir/verilog.cc.o"
  "CMakeFiles/flexon_backend.dir/verilog.cc.o.d"
  "libflexon_backend.a"
  "libflexon_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
