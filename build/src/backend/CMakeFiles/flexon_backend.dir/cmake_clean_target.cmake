file(REMOVE_RECURSE
  "libflexon_backend.a"
)
