# Empty dependencies file for flexon_backend.
# This may be replaced when dependencies are built.
