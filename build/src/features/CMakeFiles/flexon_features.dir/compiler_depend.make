# Empty compiler generated dependencies file for flexon_features.
# This may be replaced when dependencies are built.
