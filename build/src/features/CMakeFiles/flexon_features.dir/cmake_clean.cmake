file(REMOVE_RECURSE
  "CMakeFiles/flexon_features.dir/feature.cc.o"
  "CMakeFiles/flexon_features.dir/feature.cc.o.d"
  "CMakeFiles/flexon_features.dir/model_table.cc.o"
  "CMakeFiles/flexon_features.dir/model_table.cc.o.d"
  "CMakeFiles/flexon_features.dir/params.cc.o"
  "CMakeFiles/flexon_features.dir/params.cc.o.d"
  "libflexon_features.a"
  "libflexon_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexon_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
