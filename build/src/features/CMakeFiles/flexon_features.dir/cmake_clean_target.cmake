file(REMOVE_RECURSE
  "libflexon_features.a"
)
