
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/feature.cc" "src/features/CMakeFiles/flexon_features.dir/feature.cc.o" "gcc" "src/features/CMakeFiles/flexon_features.dir/feature.cc.o.d"
  "/root/repo/src/features/model_table.cc" "src/features/CMakeFiles/flexon_features.dir/model_table.cc.o" "gcc" "src/features/CMakeFiles/flexon_features.dir/model_table.cc.o.d"
  "/root/repo/src/features/params.cc" "src/features/CMakeFiles/flexon_features.dir/params.cc.o" "gcc" "src/features/CMakeFiles/flexon_features.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
